package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/eventlog"
)

// TestTransportErrorSentinels anchors the Transport error contract on
// the in-process side: the sentinels the wire protocol carries as
// compact error codes must be exactly what Direct returns, so
// errors.Is-based caller logic is transport-agnostic (the wire package's
// interop suite asserts the same matches across TCP).
func TestTransportErrorSentinels(t *testing.T) {
	_, tr := newTransport(t, 1)
	if _, err := tr.Fetch("", "ghost", 0, 0, 1, 0); !errors.Is(err, cluster.ErrNoTopic) {
		t.Fatalf("unknown topic error = %v", err)
	}
	if _, err := tr.Fetch("", "t", 0, -5, 1, 0); !errors.Is(err, eventlog.ErrOffsetOutOfRange) {
		t.Fatalf("out-of-range error = %v", err)
	}
	if _, err := tr.TopicMeta("ghost"); !errors.Is(err, cluster.ErrNoTopic) {
		t.Fatalf("meta unknown topic error = %v", err)
	}
}

func newTransport(t *testing.T, parts int) (*broker.Fabric, Transport) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: parts, ReplicationFactor: 2}); err != nil {
		t.Fatal(err)
	}
	return f, NewDirect(f)
}

func TestProducerSendFlush(t *testing.T) {
	_, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{Linger: time.Hour}) // flush manually
	defer p.Close()
	for i := 0; i < 10; i++ {
		if err := p.SendJSON("", map[string]any{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Sent() != 10 {
		t.Fatalf("sent = %d", p.Sent())
	}
	res, err := tr.Fetch("", "t", 0, 0, 100, 0)
	if err != nil || len(res.Events) != 10 {
		t.Fatalf("fetched %d, %v", len(res.Events), err)
	}
}

func TestProducerBatchSizeTriggersFlush(t *testing.T) {
	_, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{BatchEvents: 5, Linger: time.Hour})
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := p.Send(event.Event{Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		end, _ := tr.EndOffset("t", 0)
		if end == 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("batch-size flush did not happen")
}

func TestProducerLingerFlush(t *testing.T) {
	_, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{Linger: 5 * time.Millisecond})
	defer p.Close()
	if err := p.Send(event.Event{Value: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		end, _ := tr.EndOffset("t", 0)
		if end == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("linger flush did not happen")
}

func TestProducerSendSync(t *testing.T) {
	_, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{})
	defer p.Close()
	off, err := p.SendSync(event.Event{Value: []byte("now")})
	if err != nil || off != 0 {
		t.Fatalf("off = %d, %v", off, err)
	}
}

func TestProducerClosedRejectsSend(t *testing.T) {
	_, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Send(event.Event{}); !errors.Is(err, ErrProducerClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := p.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
}

func TestProducerRetriesThroughFailover(t *testing.T) {
	f, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{Retries: 5, RetryBackoff: time.Millisecond, Linger: time.Hour})
	defer p.Close()
	pm, _ := f.Ctl.Partition("t", 0)
	if err := f.StopBroker(pm.Leader); err != nil {
		t.Fatal(err)
	}
	// The controller has already re-elected (StopBroker does failover),
	// so the retry path sees the new leader and succeeds.
	if _, err := p.SendSync(event.Event{Value: []byte("x")}); err != nil {
		t.Fatalf("send through failover: %v", err)
	}
}

func TestProducerDeliveryErrorSurfaces(t *testing.T) {
	f, tr := newTransport(t, 1)
	p := NewProducer(tr, "t", ProducerConfig{Retries: 1, RetryBackoff: time.Millisecond, Linger: time.Hour})
	defer p.Close()
	// Stop both brokers: nothing can lead the partition.
	_ = f.StopBroker(0)
	_ = f.StopBroker(1)
	_, err := p.SendSync(event.Event{Value: []byte("x")})
	var derr *DeliveryError
	if !errors.As(err, &derr) {
		t.Fatalf("err = %v, want DeliveryError", err)
	}
	if !errors.Is(err, broker.ErrLeaderUnavailable) {
		t.Fatalf("unwrap = %v", err)
	}
}

func TestConsumerAssignEarliest(t *testing.T) {
	_, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(20), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(tr, ConsumerConfig{Start: StartEarliest})
	defer c.Close()
	if err := c.Assign("t", 0); err != nil {
		t.Fatal(err)
	}
	got := pollAll(t, c, 20)
	if len(got) != 20 {
		t.Fatalf("got %d", len(got))
	}
	for i, e := range got {
		if e.Offset != int64(i) {
			t.Fatalf("offset %d at %d", e.Offset, i)
		}
	}
}

func TestConsumerStartLatestSkipsHistory(t *testing.T) {
	_, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(10), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(tr, ConsumerConfig{Start: StartLatest})
	defer c.Close()
	if err := c.Assign("t", 0); err != nil {
		t.Fatal(err)
	}
	evs, err := c.Poll(100)
	if err != nil || len(evs) != 0 {
		t.Fatalf("latest consumer saw history: %d, %v", len(evs), err)
	}
	if _, err := tr.Produce("", "t", 0, mkEvents(3), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	got := pollAll(t, c, 3)
	if len(got) != 3 {
		t.Fatalf("new events = %d", len(got))
	}
}

func TestConsumerStartAtTime(t *testing.T) {
	f, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(5), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	cut := f.Clock.Now()
	time.Sleep(2 * time.Millisecond)
	if _, err := tr.Produce("", "t", 0, mkEvents(5), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(tr, ConsumerConfig{Start: StartAtTime, StartTime: cut.Add(time.Millisecond)})
	defer c.Close()
	if err := c.Assign("t", 0); err != nil {
		t.Fatal(err)
	}
	got := pollAll(t, c, 5)
	if len(got) != 5 || got[0].Offset != 5 {
		t.Fatalf("got %d starting at %d", len(got), got[0].Offset)
	}
}

func TestGroupConsumersSplitPartitions(t *testing.T) {
	_, tr := newTransport(t, 4)
	if _, err := tr.Produce("", "t", -1, mkEvents(200), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c1 := NewConsumer(tr, ConsumerConfig{Group: "g", Start: StartEarliest, AutoCommit: true})
	c2 := NewConsumer(tr, ConsumerConfig{Group: "g", Start: StartEarliest, AutoCommit: true})
	defer c1.Close()
	defer c2.Close()
	if err := c1.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	if err := c2.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	// c1 joined alone first; resubscribe to pick up the 2-member split.
	if err := c1.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	if n1, n2 := len(c1.Assignment()), len(c2.Assignment()); n1 != 2 || n2 != 2 {
		t.Fatalf("assignment split = %d/%d", n1, n2)
	}
	seen := map[int64]map[int]bool{}
	drain := func(c *Consumer) {
		for {
			evs, err := c.Poll(50)
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) == 0 {
				return
			}
			for _, e := range evs {
				if seen[int64(e.Partition)] == nil {
					seen[int64(e.Partition)] = map[int]bool{}
				}
				seen[int64(e.Partition)][int(e.Offset)] = true
			}
		}
	}
	drain(c1)
	drain(c2)
	total := 0
	for _, offs := range seen {
		total += len(offs)
	}
	if total != 200 {
		t.Fatalf("consumed %d distinct events, want 200", total)
	}
}

func TestCommittedOffsetsResumeAfterRestart(t *testing.T) {
	_, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(10), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c1 := NewConsumer(tr, ConsumerConfig{Group: "g", MemberID: "m", Start: StartEarliest})
	if err := c1.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	evs, err := c1.Poll(4)
	if err != nil || len(evs) != 4 {
		t.Fatalf("first poll: %d, %v", len(evs), err)
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()
	// A new consumer in the same group resumes at the commit, not zero.
	c2 := NewConsumer(tr, ConsumerConfig{Group: "g", MemberID: "m2", Start: StartEarliest})
	defer c2.Close()
	if err := c2.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	got := pollAll(t, c2, 6)
	if len(got) != 6 || got[0].Offset != 4 {
		t.Fatalf("resumed at %d with %d events", got[0].Offset, len(got))
	}
}

func TestConsumerSeek(t *testing.T) {
	_, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(10), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(tr, ConsumerConfig{Start: StartEarliest})
	defer c.Close()
	if err := c.Assign("t", 0); err != nil {
		t.Fatal(err)
	}
	c.Seek("t", 0, 7)
	got := pollAll(t, c, 3)
	if len(got) != 3 || got[0].Offset != 7 {
		t.Fatalf("after seek: %d events from %d", len(got), got[0].Offset)
	}
}

func TestConsumerLag(t *testing.T) {
	_, tr := newTransport(t, 1)
	c := NewConsumer(tr, ConsumerConfig{Start: StartEarliest})
	defer c.Close()
	if err := c.Assign("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Produce("", "t", 0, mkEvents(15), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	lag, err := c.Lag()
	if err != nil || lag != 15 {
		t.Fatalf("lag = %d, %v", lag, err)
	}
	pollAll(t, c, 15)
	lag, _ = c.Lag()
	if lag != 0 {
		t.Fatalf("post-drain lag = %d", lag)
	}
}

func TestSubscribeWithoutGroupFails(t *testing.T) {
	_, tr := newTransport(t, 1)
	c := NewConsumer(tr, ConsumerConfig{})
	defer c.Close()
	if err := c.Subscribe("t"); err == nil {
		t.Fatal("groupless Subscribe accepted")
	}
}

func TestConsumerClosedRejectsPoll(t *testing.T) {
	_, tr := newTransport(t, 1)
	c := NewConsumer(tr, ConsumerConfig{})
	_ = c.Close()
	if _, err := c.Poll(1); !errors.Is(err, ErrConsumerClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndToEndProducerConsumerConcurrent(t *testing.T) {
	_, tr := newTransport(t, 2)
	const total = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := NewProducer(tr, "t", ProducerConfig{BatchEvents: 32, Linger: time.Millisecond})
		defer p.Close()
		for i := 0; i < total; i++ {
			if err := p.SendJSON("", map[string]any{"seq": i}); err != nil {
				t.Error(err)
				return
			}
		}
		if err := p.Flush(); err != nil {
			t.Error(err)
		}
	}()
	c := NewConsumer(tr, ConsumerConfig{Group: "g", Start: StartEarliest, AutoCommit: true})
	defer c.Close()
	if err := c.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < total && time.Now().Before(deadline) {
		evs, err := c.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		got += len(evs)
		if len(evs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	if got != total {
		t.Fatalf("consumed %d, want %d", got, total)
	}
}

func mkEvents(n int) []event.Event {
	out := make([]event.Event, n)
	for i := range out {
		out[i] = event.Event{Value: []byte(fmt.Sprintf("e%d", i))}
	}
	return out
}

func pollAll(t *testing.T, c *Consumer, want int) []event.Event {
	t.Helper()
	var got []event.Event
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < want && time.Now().Before(deadline) {
		evs, err := c.Poll(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, evs...)
		if len(evs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	return got
}

// TestPollSessionReuseDeliversCorrectStream drains a partition through
// the zero-copy fetch session, checking every event inside its poll
// window (the validity contract): offsets must be dense and values
// intact even though the session reuses one buffer across polls.
func TestPollSessionReuseDeliversCorrectStream(t *testing.T) {
	for _, prefetch := range []bool{false, true} {
		t.Run(fmt.Sprintf("prefetch=%v", prefetch), func(t *testing.T) {
			_, tr := newTransport(t, 1)
			if _, err := tr.Produce("", "t", 0, mkEvents(100), broker.AcksLeader); err != nil {
				t.Fatal(err)
			}
			c := NewConsumer(tr, ConsumerConfig{Start: StartEarliest, Prefetch: prefetch})
			defer c.Close()
			if err := c.Assign("t", 0); err != nil {
				t.Fatal(err)
			}
			next := int64(0)
			deadline := time.Now().Add(5 * time.Second)
			for next < 100 && time.Now().Before(deadline) {
				evs, err := c.Poll(7) // odd size so polls straddle batches
				if err != nil {
					t.Fatal(err)
				}
				for _, ev := range evs {
					if ev.Offset != next {
						t.Fatalf("offset %d, want %d", ev.Offset, next)
					}
					if want := fmt.Sprintf("e%d", next); string(ev.Value) != want {
						t.Fatalf("value %q at offset %d, want %q", ev.Value, next, want)
					}
					next++
				}
			}
			if next != 100 {
				t.Fatalf("consumed %d events, want 100", next)
			}
		})
	}
}

// TestSeekInvalidatesPrefetch seeks backwards between polls: the
// in-flight prefetch (for the old position) must be discarded, not
// served.
func TestSeekInvalidatesPrefetch(t *testing.T) {
	_, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(50), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(tr, ConsumerConfig{Start: StartEarliest, Prefetch: true})
	defer c.Close()
	if err := c.Assign("t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Poll(10); err != nil { // leaves a prefetch at offset 10
		t.Fatal(err)
	}
	c.Seek("t", 0, 3)
	evs, err := c.Poll(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Offset != 3 {
		t.Fatalf("poll after seek started at %d, want 3", evs[0].Offset)
	}
}

func TestCommitWindowThrottlesAutoCommit(t *testing.T) {
	f, tr := newTransport(t, 1)
	if _, err := tr.Produce("", "t", 0, mkEvents(10), broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	c := NewConsumer(tr, ConsumerConfig{
		Group: "g", MemberID: "m", Start: StartEarliest,
		AutoCommit: true, CommitInterval: time.Hour, // effectively never within the test
	})
	defer c.Close()
	if err := c.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	// First poll commits (lastCommit zero -> interval elapsed).
	if _, err := c.Poll(3); err != nil {
		t.Fatal(err)
	}
	first := f.Groups.Committed("g", "t", 0)
	if first < 0 {
		t.Fatal("first poll did not commit")
	}
	// Subsequent polls consume but do not commit within the window.
	if _, err := c.Poll(3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Poll(3); err != nil {
		t.Fatal(err)
	}
	if got := f.Groups.Committed("g", "t", 0); got != first {
		t.Fatalf("commit advanced within window: %d -> %d", first, got)
	}
	// Manual commit still works.
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := f.Groups.Committed("g", "t", 0); got <= first {
		t.Fatalf("manual commit did not advance: %d", got)
	}
}
