package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
	"repro/internal/vclock"
)

// ProducerConfig tunes the SDK producer. Defaults mirror the paper's
// tuned settings (§V-B: buffer.memory reduced to 256 KB) and the SDK's
// retry behavior (§IV-F: "the SDK producer retries a configurable number
// of times before failing").
type ProducerConfig struct {
	// Identity is the producing principal (empty = trusted in-process).
	Identity string
	// Acks is the acknowledgment level (default AcksLeader).
	Acks broker.Acks
	// AcksSet marks Acks as explicitly chosen, allowing AcksNone (whose
	// zero value would otherwise be indistinguishable from "unset").
	AcksSet bool
	// Retries is how many times a failed batch is retried (default 3).
	Retries int
	// RetryBackoff separates attempts (default 50 ms).
	RetryBackoff time.Duration
	// BatchEvents flushes when this many events are buffered (default 256).
	BatchEvents int
	// BufferBytes flushes when this much payload is buffered
	// (default 256 KB, the paper's buffer.memory).
	BufferBytes int
	// Linger is the maximum time an event waits in the buffer before a
	// flush (default 5 ms).
	Linger time.Duration
	// Clock supplies time (default real).
	Clock vclock.Clock
}

func (c *ProducerConfig) fill() {
	if c.Acks == 0 && !c.AcksSet {
		c.Acks = broker.AcksLeader
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BatchEvents == 0 {
		c.BatchEvents = 256
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 256 << 10
	}
	if c.Linger == 0 {
		c.Linger = 5 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
}

// ErrProducerClosed reports a send on a closed producer.
var ErrProducerClosed = errors.New("client: producer closed")

// DeliveryError describes a batch that exhausted its retries.
type DeliveryError struct {
	Topic  string
	Events int
	Err    error
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("client: delivery of %d events to %s failed: %v", e.Events, e.Topic, e.Err)
}

func (e *DeliveryError) Unwrap() error { return e.Err }

// Producer publishes events to one topic with asynchronous batching:
// Send buffers, a background flusher groups events into batches bounded
// by count, bytes, and linger time, and failed batches are retried with
// backoff. Flush and Close provide the synchronous barriers.
type Producer struct {
	t     Transport
	topic string
	cfg   ProducerConfig

	mu      sync.Mutex
	buf     []event.Event
	bufSize int
	closed  bool
	flushCh chan chan error
	wakeCh  chan struct{}
	doneCh  chan struct{}

	errMu  sync.Mutex
	errors []error

	// Sent counts successfully delivered events.
	sent int64
}

// NewProducer creates a producer for the topic and starts its flusher.
func NewProducer(t Transport, topic string, cfg ProducerConfig) *Producer {
	cfg.fill()
	p := &Producer{
		t:       t,
		topic:   topic,
		cfg:     cfg,
		flushCh: make(chan chan error, 16),
		wakeCh:  make(chan struct{}, 1),
		doneCh:  make(chan struct{}),
	}
	go p.run()
	return p
}

// Send buffers an event for asynchronous delivery. It returns
// immediately; delivery failures surface via Errors or the error
// returned from Flush/Close.
func (p *Producer) Send(ev event.Event) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrProducerClosed
	}
	p.buf = append(p.buf, ev)
	p.bufSize += ev.Size()
	full := len(p.buf) >= p.cfg.BatchEvents || p.bufSize >= p.cfg.BufferBytes
	p.mu.Unlock()
	if full {
		select {
		case p.wakeCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// SendJSON marshals v and sends it with the given key.
func (p *Producer) SendJSON(key string, v any) error {
	return p.Send(event.New(key, v))
}

// SendSync publishes a single event synchronously, bypassing the buffer,
// and returns its base offset.
func (p *Producer) SendSync(ev event.Event) (int64, error) {
	return p.produceWithRetry([]event.Event{ev})
}

// Flush delivers everything buffered and returns the first error
// encountered since the previous Flush, if any.
func (p *Producer) Flush() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrProducerClosed
	}
	p.mu.Unlock()
	ack := make(chan error, 1)
	p.flushCh <- ack
	return <-ack
}

// Close flushes and stops the producer.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	ack := make(chan error, 1)
	p.flushCh <- ack
	err := <-ack
	close(p.doneCh)
	return err
}

// Sent returns the number of events successfully delivered.
func (p *Producer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Errors drains and returns accumulated delivery errors.
func (p *Producer) Errors() []error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	out := p.errors
	p.errors = nil
	return out
}

func (p *Producer) run() {
	for {
		select {
		case <-p.doneCh:
			return
		case ack := <-p.flushCh:
			ack <- p.flushOnce()
		case <-p.wakeCh:
			p.recordErr(p.flushOnce())
		case <-p.cfg.Clock.After(p.cfg.Linger):
			p.recordErr(p.flushOnce())
		}
	}
}

func (p *Producer) recordErr(err error) {
	if err == nil {
		return
	}
	p.errMu.Lock()
	p.errors = append(p.errors, err)
	p.errMu.Unlock()
}

// flushOnce drains the buffer and produces it as one batch.
func (p *Producer) flushOnce() error {
	p.mu.Lock()
	batch := p.buf
	p.buf = nil
	p.bufSize = 0
	p.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	_, err := p.produceWithRetry(batch)
	return err
}

func (p *Producer) produceWithRetry(batch []event.Event) (int64, error) {
	var lastErr error
	for attempt := 0; attempt <= p.cfg.Retries; attempt++ {
		if attempt > 0 {
			p.cfg.Clock.Sleep(p.cfg.RetryBackoff)
		}
		off, err := p.t.Produce(p.cfg.Identity, p.topic, -1, batch, p.cfg.Acks)
		if err == nil {
			p.mu.Lock()
			p.sent += int64(len(batch))
			p.mu.Unlock()
			return off, nil
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	derr := &DeliveryError{Topic: p.topic, Events: len(batch), Err: lastErr}
	return 0, derr
}

// temporary is implemented by transient transport errors (e.g. network
// partitions injected by internal/netsim).
type temporary interface {
	Temporary() bool
}

// retryable reports whether an error is transient: leader failover,
// broker unavailability and network partitions heal; authorization and
// schema errors do not.
func retryable(err error) bool {
	var tmp temporary
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	return errors.Is(err, broker.ErrLeaderUnavailable) ||
		errors.Is(err, broker.ErrBrokerDown) ||
		errors.Is(err, broker.ErrNotEnoughReplicas)
}
