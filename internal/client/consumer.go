package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
	"repro/internal/vclock"
)

// StartPosition selects where a consumer without a committed offset
// begins (§IV-F: "consumers can consume messages either from the latest
// or the earliest offset, or after a certain timestamp").
type StartPosition int

// Start positions.
const (
	// StartLatest begins at the partition end (only new events).
	StartLatest StartPosition = iota
	// StartEarliest begins at the earliest retained offset.
	StartEarliest
	// StartAtTime begins at the first event at or after StartTime.
	StartAtTime
)

// ConsumerConfig tunes the SDK consumer.
type ConsumerConfig struct {
	// Identity is the consuming principal (empty = trusted in-process).
	Identity string
	// Group enables coordinated consumption; empty means standalone
	// (the caller assigns partitions with Assign).
	Group string
	// MemberID identifies this consumer in the group (auto if empty).
	MemberID string
	// Start selects the initial position without a commit.
	Start StartPosition
	// StartTime is used with StartAtTime.
	StartTime time.Time
	// MaxPollEvents bounds one Poll (default 500).
	MaxPollEvents int
	// ReceiveBufferBytes bounds bytes per partition fetch (default 2 MB,
	// the paper's tuned receive.buffer.bytes).
	ReceiveBufferBytes int
	// AutoCommit commits positions after each Poll when true
	// (default behavior; §IV-F "consumers periodically commit").
	AutoCommit bool
	// CommitInterval throttles auto-commits: positions commit at most
	// once per interval (§IV-F: "the commit window is adjustable").
	// Zero commits on every poll.
	CommitInterval time.Duration
	// Clock supplies time (default real).
	Clock vclock.Clock
}

func (c *ConsumerConfig) fill() {
	if c.MaxPollEvents == 0 {
		c.MaxPollEvents = 500
	}
	if c.ReceiveBufferBytes == 0 {
		c.ReceiveBufferBytes = 2 << 20
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
}

// ErrConsumerClosed reports use of a closed consumer.
var ErrConsumerClosed = errors.New("client: consumer closed")

var memberSeq struct {
	mu sync.Mutex
	n  int
}

func nextMemberID() string {
	memberSeq.mu.Lock()
	defer memberSeq.mu.Unlock()
	memberSeq.n++
	return fmt.Sprintf("member-%d", memberSeq.n)
}

// Consumer reads events from assigned partitions, tracking per-partition
// positions, rejoining on rebalance, and committing offsets for
// at-least-once delivery.
type Consumer struct {
	t   Transport
	cfg ConsumerConfig

	mu         sync.Mutex
	topics     []string
	assigned   []broker.TP
	positions  map[broker.TP]int64
	generation int
	rr         int // round-robin cursor over assigned partitions
	lastCommit time.Time
	closed     bool
}

// NewConsumer creates a consumer. With cfg.Group set, call Subscribe;
// otherwise call Assign.
func NewConsumer(t Transport, cfg ConsumerConfig) *Consumer {
	cfg.fill()
	if cfg.Group != "" && cfg.MemberID == "" {
		cfg.MemberID = nextMemberID()
	}
	return &Consumer{t: t, cfg: cfg, positions: make(map[broker.TP]int64)}
}

// Subscribe joins the configured group for the topics and adopts the
// coordinator's assignment.
func (c *Consumer) Subscribe(topics ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConsumerClosed
	}
	if c.cfg.Group == "" {
		return errors.New("client: Subscribe requires a group; use Assign for standalone consumers")
	}
	c.topics = append([]string(nil), topics...)
	return c.rejoinLocked()
}

func (c *Consumer) rejoinLocked() error {
	asn, err := c.t.JoinGroup(c.cfg.Group, c.cfg.MemberID, c.topics)
	if err != nil {
		return err
	}
	c.generation = asn.Generation
	c.assigned = asn.Partitions
	// Reset positions: committed offsets win, else the start policy.
	c.positions = make(map[broker.TP]int64, len(c.assigned))
	for _, tp := range c.assigned {
		if off := c.t.Committed(c.cfg.Group, tp.Topic, tp.Partition); off >= 0 {
			c.positions[tp] = off
			continue
		}
		off, err := c.startOffsetFor(tp)
		if err != nil {
			return err
		}
		c.positions[tp] = off
	}
	return nil
}

// Assign sets explicit partitions for a standalone consumer.
func (c *Consumer) Assign(topic string, partitions ...int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConsumerClosed
	}
	for _, p := range partitions {
		tp := broker.TP{Topic: topic, Partition: p}
		c.assigned = append(c.assigned, tp)
		off, err := c.startOffsetFor(tp)
		if err != nil {
			return err
		}
		c.positions[tp] = off
	}
	return nil
}

func (c *Consumer) startOffsetFor(tp broker.TP) (int64, error) {
	switch c.cfg.Start {
	case StartEarliest:
		return c.t.StartOffset(tp.Topic, tp.Partition)
	case StartAtTime:
		return c.t.OffsetForTime(tp.Topic, tp.Partition, c.cfg.StartTime)
	default:
		return c.t.EndOffset(tp.Topic, tp.Partition)
	}
}

// Seek moves the position of an assigned partition.
func (c *Consumer) Seek(topic string, partition int, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.positions[broker.TP{Topic: topic, Partition: partition}] = offset
}

// Assignment returns the currently assigned partitions.
func (c *Consumer) Assignment() []broker.TP {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]broker.TP(nil), c.assigned...)
}

// Poll fetches up to max events (cfg.MaxPollEvents if max <= 0) across
// assigned partitions, advancing positions. It returns immediately with
// whatever is available, possibly nothing. On a group rebalance the
// consumer transparently rejoins and retries once.
func (c *Consumer) Poll(max int) ([]event.Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConsumerClosed
	}
	if max <= 0 {
		max = c.cfg.MaxPollEvents
	}
	evs, err := c.pollLocked(max)
	if err == nil && c.cfg.Group != "" && c.cfg.AutoCommit {
		now := c.cfg.Clock.Now()
		if c.cfg.CommitInterval <= 0 || now.Sub(c.lastCommit) >= c.cfg.CommitInterval {
			cerr := c.commitLocked()
			if cerr == nil {
				c.lastCommit = now
			} else if errors.Is(cerr, broker.ErrStaleGeneration) {
				if rerr := c.rejoinLocked(); rerr != nil {
					return evs, rerr
				}
			}
		}
	}
	return evs, err
}

func (c *Consumer) pollLocked(max int) ([]event.Event, error) {
	var out []event.Event
	n := len(c.assigned)
	for i := 0; i < n && len(out) < max; i++ {
		tp := c.assigned[(c.rr+i)%n]
		pos := c.positions[tp]
		res, err := c.t.Fetch(c.cfg.Identity, tp.Topic, tp.Partition, pos, max-len(out), c.cfg.ReceiveBufferBytes)
		if err != nil {
			if errors.Is(err, broker.ErrLeaderUnavailable) {
				continue // partition failing over; try again next poll
			}
			// Position below retention start: jump forward.
			if res2, serr := c.recoverOutOfRange(tp, err); serr == nil {
				res = res2
			} else {
				return out, err
			}
		}
		if out == nil {
			// Common case: one partition satisfies the poll. Adopt the
			// fetch result's slice (it is freshly built per fetch) rather
			// than re-copying every event.
			out = res.Events
		} else {
			out = append(out, res.Events...)
		}
		if len(res.Events) > 0 {
			last := res.Events[len(res.Events)-1]
			c.positions[tp] = last.Offset + 1
		}
	}
	if n > 0 {
		c.rr = (c.rr + 1) % n
	}
	return out, nil
}

func (c *Consumer) recoverOutOfRange(tp broker.TP, err error) (broker.FetchResult, error) {
	start, serr := c.t.StartOffset(tp.Topic, tp.Partition)
	if serr != nil || c.positions[tp] >= start {
		return broker.FetchResult{}, err
	}
	c.positions[tp] = start
	return c.t.Fetch(c.cfg.Identity, tp.Topic, tp.Partition, start, c.cfg.MaxPollEvents, c.cfg.ReceiveBufferBytes)
}

// Commit records current positions with the coordinator (§IV-F:
// "consumers can manually invoke the commit API").
func (c *Consumer) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commitLocked()
}

func (c *Consumer) commitLocked() error {
	if c.cfg.Group == "" {
		return nil
	}
	for tp, off := range c.positions {
		if err := c.t.Commit(c.cfg.Group, c.cfg.MemberID, c.generation, tp.Topic, tp.Partition, off); err != nil {
			return err
		}
	}
	return nil
}

// Lag returns the total unconsumed backlog across assigned partitions.
func (c *Consumer) Lag() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lag int64
	for _, tp := range c.assigned {
		end, err := c.t.EndOffset(tp.Topic, tp.Partition)
		if err != nil {
			return 0, err
		}
		if d := end - c.positions[tp]; d > 0 {
			lag += d
		}
	}
	return lag, nil
}

// Close leaves the group and marks the consumer unusable.
func (c *Consumer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if c.cfg.Group != "" {
		if c.cfg.AutoCommit {
			// Best-effort final commit; the group may already have
			// rebalanced, in which case the next owner resumes from the
			// previous commit (at-least-once).
			_ = c.commitLocked()
		}
		c.t.LeaveGroup(c.cfg.Group, c.cfg.MemberID)
	}
	c.closed = true
	return nil
}
