package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/event"
	"repro/internal/vclock"
)

// StartPosition selects where a consumer without a committed offset
// begins (§IV-F: "consumers can consume messages either from the latest
// or the earliest offset, or after a certain timestamp").
type StartPosition int

// Start positions.
const (
	// StartLatest begins at the partition end (only new events).
	StartLatest StartPosition = iota
	// StartEarliest begins at the earliest retained offset.
	StartEarliest
	// StartAtTime begins at the first event at or after StartTime.
	StartAtTime
)

// ConsumerConfig tunes the SDK consumer.
type ConsumerConfig struct {
	// Identity is the consuming principal (empty = trusted in-process).
	Identity string
	// Group enables coordinated consumption; empty means standalone
	// (the caller assigns partitions with Assign).
	Group string
	// MemberID identifies this consumer in the group (auto if empty).
	MemberID string
	// Start selects the initial position without a commit.
	Start StartPosition
	// StartTime is used with StartAtTime.
	StartTime time.Time
	// MaxPollEvents bounds one Poll (default 500).
	MaxPollEvents int
	// ReceiveBufferBytes bounds bytes per partition fetch (default 2 MB,
	// the paper's tuned receive.buffer.bytes).
	ReceiveBufferBytes int
	// AutoCommit commits positions after each Poll when true
	// (default behavior; §IV-F "consumers periodically commit").
	AutoCommit bool
	// Prefetch pipelines consumption: after each Poll, the consumer
	// starts fetching the next batch for the polled partition in the
	// background, so the network round trip overlaps with the
	// application processing the current batch. Requires a
	// BufferedFetcher transport (Direct and the wire client both are);
	// ignored otherwise.
	Prefetch bool
	// PollWait long-polls: a Poll that finds every assigned partition
	// empty blocks up to this long on the next round-robin partition —
	// through the transport's WaitFetcher extension (Direct and the wire
	// client both park on the server's tail waiters; streaming-fetch
	// connections park on the local frame queue) — instead of returning
	// empty immediately, so an idle consumer costs a blocked goroutine
	// rather than a fetch loop. Zero keeps Poll non-blocking. With
	// multiple assigned partitions, data appended to a partition other
	// than the one being waited on is picked up by the next Poll, so
	// worst-case extra latency is one PollWait. Note that Commit/Seek
	// from other goroutines block while a Poll is waiting.
	PollWait time.Duration
	// CommitInterval throttles auto-commits: positions commit at most
	// once per interval (§IV-F: "the commit window is adjustable").
	// Zero commits on every poll.
	CommitInterval time.Duration
	// Clock supplies time (default real).
	Clock vclock.Clock
}

func (c *ConsumerConfig) fill() {
	if c.MaxPollEvents == 0 {
		c.MaxPollEvents = 500
	}
	if c.ReceiveBufferBytes == 0 {
		c.ReceiveBufferBytes = 2 << 20
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
}

// ErrConsumerClosed reports use of a closed consumer.
var ErrConsumerClosed = errors.New("client: consumer closed")

var memberSeq struct {
	mu sync.Mutex
	n  int
}

func nextMemberID() string {
	memberSeq.mu.Lock()
	defer memberSeq.mu.Unlock()
	memberSeq.n++
	return fmt.Sprintf("member-%d", memberSeq.n)
}

// Consumer reads events from assigned partitions, tracking per-partition
// positions, rejoining on rebalance, and committing offsets for
// at-least-once delivery.
//
// When the transport is a BufferedFetcher, each assigned partition gets
// a fetch session owning a reusable receive buffer (its arena growth is
// bounded by ReceiveBufferBytes), so the steady-state consume path stops
// allocating; see Poll for the resulting lifetime contract. Which wire
// transport backs those fetches is invisible here: against a
// FeatSessionFetch peer the wire client multiplexes every assigned
// partition over one session (and one server goroutine) per
// connection, against older peers it falls back to per-partition
// streams, and the consumer's Poll loop is identical either way.
type Consumer struct {
	t   Transport
	bf  BufferedFetcher // t's buffered-fetch extension, nil if absent
	wf  WaitFetcher     // t's long-poll extension, nil if absent
	cfg ConsumerConfig

	mu         sync.Mutex
	topics     []string
	assigned   []broker.TP
	positions  map[broker.TP]int64
	sessions   map[broker.TP]*fetchSession
	pollBuf    []event.Event // reused Poll result slice
	generation int
	rr         int // round-robin cursor over assigned partitions
	lastCommit time.Time
	closed     bool
}

// fetchSession is one partition's consume state: a receive buffer the
// transport decodes into on every poll, plus a second buffer an async
// prefetch fills while the application processes the first.
type fetchSession struct {
	buf broker.FetchBuffer // active receive buffer
	pre broker.FetchBuffer // prefetch target; swapped in when adopted
	// pending, when non-nil, carries the in-flight prefetch started at
	// preOff. Only the prefetch goroutine touches pre until its result
	// has been received from pending.
	pending chan prefetchResult
	preOff  int64
}

type prefetchResult struct {
	res broker.FetchResult
	err error
}

// NewConsumer creates a consumer. With cfg.Group set, call Subscribe;
// otherwise call Assign.
func NewConsumer(t Transport, cfg ConsumerConfig) *Consumer {
	cfg.fill()
	if cfg.Group != "" && cfg.MemberID == "" {
		cfg.MemberID = nextMemberID()
	}
	bf, _ := t.(BufferedFetcher)
	wf, _ := t.(WaitFetcher)
	return &Consumer{
		t: t, bf: bf, wf: wf, cfg: cfg,
		positions: make(map[broker.TP]int64),
		sessions:  make(map[broker.TP]*fetchSession),
	}
}

// Subscribe joins the configured group for the topics and adopts the
// coordinator's assignment.
func (c *Consumer) Subscribe(topics ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConsumerClosed
	}
	if c.cfg.Group == "" {
		return errors.New("client: Subscribe requires a group; use Assign for standalone consumers")
	}
	c.topics = append([]string(nil), topics...)
	return c.rejoinLocked()
}

func (c *Consumer) rejoinLocked() error {
	asn, err := c.t.JoinGroup(c.cfg.Group, c.cfg.MemberID, c.topics)
	if err != nil {
		return err
	}
	c.generation = asn.Generation
	c.assigned = asn.Partitions
	// Reset positions: committed offsets win, else the start policy.
	c.positions = make(map[broker.TP]int64, len(c.assigned))
	for _, tp := range c.assigned {
		if off := c.t.Committed(c.cfg.Group, tp.Topic, tp.Partition); off >= 0 {
			c.positions[tp] = off
			continue
		}
		off, err := c.startOffsetFor(tp)
		if err != nil {
			return err
		}
		c.positions[tp] = off
	}
	return nil
}

// Assign sets explicit partitions for a standalone consumer.
func (c *Consumer) Assign(topic string, partitions ...int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConsumerClosed
	}
	for _, p := range partitions {
		tp := broker.TP{Topic: topic, Partition: p}
		c.assigned = append(c.assigned, tp)
		off, err := c.startOffsetFor(tp)
		if err != nil {
			return err
		}
		c.positions[tp] = off
	}
	return nil
}

func (c *Consumer) startOffsetFor(tp broker.TP) (int64, error) {
	switch c.cfg.Start {
	case StartEarliest:
		return c.t.StartOffset(tp.Topic, tp.Partition)
	case StartAtTime:
		return c.t.OffsetForTime(tp.Topic, tp.Partition, c.cfg.StartTime)
	default:
		return c.t.EndOffset(tp.Topic, tp.Partition)
	}
}

// Seek moves the position of an assigned partition.
func (c *Consumer) Seek(topic string, partition int, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.positions[broker.TP{Topic: topic, Partition: partition}] = offset
}

// Assignment returns the currently assigned partitions.
func (c *Consumer) Assignment() []broker.TP {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]broker.TP(nil), c.assigned...)
}

// Poll fetches up to max events (cfg.MaxPollEvents if max <= 0) across
// assigned partitions, advancing positions. It returns immediately with
// whatever is available, possibly nothing. On a group rebalance the
// consumer transparently rejoins and retries once.
//
// The returned slice — and, on a zero-copy transport (BufferedFetcher),
// the events' Key/Value bytes — is reused by the next Poll on this
// consumer. Process or copy events before polling again; do not retain
// them across polls. Every in-tree consumer already follows this
// (Kafka-style) pattern.
func (c *Consumer) Poll(max int) ([]event.Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrConsumerClosed
	}
	if max <= 0 {
		max = c.cfg.MaxPollEvents
	}
	evs, err := c.pollLocked(max)
	if err == nil && c.cfg.Group != "" && c.cfg.AutoCommit {
		now := c.cfg.Clock.Now()
		if c.cfg.CommitInterval <= 0 || now.Sub(c.lastCommit) >= c.cfg.CommitInterval {
			cerr := c.commitLocked()
			if cerr == nil {
				c.lastCommit = now
			} else if errors.Is(cerr, broker.ErrStaleGeneration) {
				if rerr := c.rejoinLocked(); rerr != nil {
					return evs, rerr
				}
			}
		}
	}
	return evs, err
}

func (c *Consumer) pollLocked(max int) ([]event.Event, error) {
	out := c.pollBuf[:0]
	n := len(c.assigned)
	for i := 0; i < n && len(out) < max; i++ {
		tp := c.assigned[(c.rr+i)%n]
		res, err := c.fetchOne(tp, max-len(out), 0)
		if err != nil {
			c.pollBuf = out
			return out, err
		}
		out = append(out, res.Events...)
	}
	if n > 0 {
		c.rr = (c.rr + 1) % n
	}
	if len(out) == 0 && n > 0 && c.cfg.PollWait > 0 && c.wf != nil {
		// Every partition came back empty: long-poll the next
		// round-robin partition instead of returning an empty slice the
		// caller would immediately re-Poll. Successive polls rotate rr,
		// so every assigned partition gets waited on in turn.
		res, err := c.fetchOne(c.assigned[c.rr], max, c.cfg.PollWait)
		if err != nil {
			c.pollBuf = out
			return out, err
		}
		out = append(out, res.Events...)
	}
	c.pollBuf = out
	return out, nil
}

// fetchOne fetches one partition at its current position, advancing the
// position and kicking a prefetch when events arrive. Leader failover
// yields an empty result (retried next poll); a position below the
// retention start jumps forward.
func (c *Consumer) fetchOne(tp broker.TP, max int, wait time.Duration) (broker.FetchResult, error) {
	pos := c.positions[tp]
	res, err := c.fetchPartition(tp, pos, max, wait)
	if err != nil {
		if errors.Is(err, broker.ErrLeaderUnavailable) {
			return broker.FetchResult{}, nil // failing over; try next poll
		}
		res2, serr := c.recoverOutOfRange(tp, err)
		if serr != nil {
			return broker.FetchResult{}, err
		}
		res = res2
	}
	if len(res.Events) > 0 {
		last := res.Events[len(res.Events)-1]
		c.positions[tp] = last.Offset + 1
		c.maybePrefetch(tp)
	}
	return res, nil
}

// fetchPartition fetches one partition at pos, through the zero-copy
// session when the transport supports it — adopting an in-flight
// prefetch's result when it matches the position.
func (c *Consumer) fetchPartition(tp broker.TP, pos int64, max int, wait time.Duration) (broker.FetchResult, error) {
	if c.bf == nil {
		return c.t.Fetch(c.cfg.Identity, tp.Topic, tp.Partition, pos, max, c.cfg.ReceiveBufferBytes)
	}
	s := c.session(tp)
	if s.pending != nil {
		r := <-s.pending
		s.pending = nil
		if r.err == nil && s.preOff == pos && (len(r.res.Events) > 0 || wait <= 0) {
			// The prefetch landed exactly where this poll reads: swap its
			// buffer in and serve it without touching the transport. (An
			// empty prefetch result does not satisfy a waiting poll —
			// fall through so the wait actually blocks.)
			s.buf, s.pre = s.pre, s.buf
			res := r.res
			if len(res.Events) > max {
				// The caller asked for fewer than were prefetched; the
				// position advances only past what is returned, so the
				// remainder is refetched next poll.
				res.Events = res.Events[:max]
			}
			return res, nil
		}
		// Stale (seek, rebalance) or failed prefetch: fall through to a
		// fresh fetch.
	}
	if wait > 0 && c.wf != nil {
		return c.wf.FetchBufferedWait(c.cfg.Identity, tp.Topic, tp.Partition, pos, max, c.cfg.ReceiveBufferBytes, wait, &s.buf)
	}
	return c.bf.FetchBuffered(c.cfg.Identity, tp.Topic, tp.Partition, pos, max, c.cfg.ReceiveBufferBytes, &s.buf)
}

// maybePrefetch starts an async fetch of tp's next batch into the
// session's spare buffer, overlapping the transport round trip with the
// application's processing of the batch just returned.
func (c *Consumer) maybePrefetch(tp broker.TP) {
	if !c.cfg.Prefetch || c.bf == nil {
		return
	}
	s := c.session(tp)
	if s.pending != nil {
		return
	}
	pos := c.positions[tp]
	ch := make(chan prefetchResult, 1)
	s.pending = ch
	s.preOff = pos
	pre := &s.pre
	go func() {
		res, err := c.bf.FetchBuffered(c.cfg.Identity, tp.Topic, tp.Partition, pos, c.cfg.MaxPollEvents, c.cfg.ReceiveBufferBytes, pre)
		ch <- prefetchResult{res: res, err: err}
	}()
}

func (c *Consumer) session(tp broker.TP) *fetchSession {
	s, ok := c.sessions[tp]
	if !ok {
		s = &fetchSession{}
		c.sessions[tp] = s
	}
	return s
}

func (c *Consumer) recoverOutOfRange(tp broker.TP, err error) (broker.FetchResult, error) {
	start, serr := c.t.StartOffset(tp.Topic, tp.Partition)
	if serr != nil || c.positions[tp] >= start {
		return broker.FetchResult{}, err
	}
	c.positions[tp] = start
	return c.t.Fetch(c.cfg.Identity, tp.Topic, tp.Partition, start, c.cfg.MaxPollEvents, c.cfg.ReceiveBufferBytes)
}

// Commit records current positions with the coordinator (§IV-F:
// "consumers can manually invoke the commit API").
func (c *Consumer) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commitLocked()
}

func (c *Consumer) commitLocked() error {
	if c.cfg.Group == "" {
		return nil
	}
	for tp, off := range c.positions {
		if err := c.t.Commit(c.cfg.Group, c.cfg.MemberID, c.generation, tp.Topic, tp.Partition, off); err != nil {
			return err
		}
	}
	return nil
}

// Lag returns the total unconsumed backlog across assigned partitions.
func (c *Consumer) Lag() (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lag int64
	for _, tp := range c.assigned {
		end, err := c.t.EndOffset(tp.Topic, tp.Partition)
		if err != nil {
			return 0, err
		}
		if d := end - c.positions[tp]; d > 0 {
			lag += d
		}
	}
	return lag, nil
}

// Close leaves the group and marks the consumer unusable.
func (c *Consumer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if c.cfg.Group != "" {
		if c.cfg.AutoCommit {
			// Best-effort final commit; the group may already have
			// rebalanced, in which case the next owner resumes from the
			// previous commit (at-least-once).
			_ = c.commitLocked()
		}
		c.t.LeaveGroup(c.cfg.Group, c.cfg.MemberID)
	}
	c.closed = true
	return nil
}
