// Package client is the Octopus SDK (§IV-E): producers with asynchronous
// batching and configurable acknowledgments and retries, consumers with
// group membership, committed offsets and seek-by-time, and an admin
// surface. Clients speak to the fabric through a Transport, which may be
// the in-process fabric, a latency-injecting wrapper (internal/netsim),
// or the TCP wire protocol (internal/wire).
package client

import (
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// Transport is the client's connection to the event fabric. All SDK
// functionality is built on these primitives.
//
// Errors are typed on every transport: implementations return (or, for
// remote transports, reconstruct from compact wire error codes) the
// domain sentinels — cluster.ErrNoTopic, eventlog.ErrOffsetOutOfRange,
// broker.ErrLeaderUnavailable, auth.ErrDenied, ... — so callers can
// errors.Is identically whether the fabric is in-process or across the
// network.
type Transport interface {
	// Produce appends events; partition < 0 routes per event by key.
	Produce(identity, topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error)
	// Fetch reads events from one partition starting at offset.
	Fetch(identity, topic string, partition int, offset int64, maxEvents, maxBytes int) (broker.FetchResult, error)
	// EndOffset returns the next offset to be assigned on the partition.
	EndOffset(topic string, partition int) (int64, error)
	// StartOffset returns the earliest retained offset.
	StartOffset(topic string, partition int) (int64, error)
	// OffsetForTime returns the first offset at or after t.
	OffsetForTime(topic string, partition int, t time.Time) (int64, error)
	// TopicMeta returns topic metadata.
	TopicMeta(topic string) (*cluster.TopicMeta, error)
	// JoinGroup registers group membership and returns the assignment.
	JoinGroup(groupID, memberID string, topics []string) (broker.Assignment, error)
	// LeaveGroup removes the member.
	LeaveGroup(groupID, memberID string)
	// Heartbeat returns the group generation.
	Heartbeat(groupID, memberID string) (int, error)
	// Commit records a consumed position.
	Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error
	// Committed returns the committed offset or -1.
	Committed(groupID, topic string, partition int) int64
}

// BufferedFetcher is an optional Transport extension for zero-copy
// consumption: FetchBuffered reads into (and decodes out of) the
// caller-owned broker.FetchBuffer instead of allocating a payload and an
// event slice per fetch. The consumer's per-partition fetch sessions use
// it when the transport offers it; results are valid only until the
// buffer's next use. Both Direct and the wire client implement it.
type BufferedFetcher interface {
	FetchBuffered(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, buf *broker.FetchBuffer) (broker.FetchResult, error)
}

// WaitFetcher is an optional Transport extension for long-poll
// consumption: a fetch that finds the partition empty blocks up to wait
// for an append instead of returning immediately, so idle consumers
// stop burning CPU (and, over the wire, round trips) re-polling empty
// partitions. Implementations park on the partition log's tail waiter
// (Direct) or on the negotiated wire mechanism — FetchReq.WaitMaxMS
// long-polls or a streaming-fetch session's frame queue (wire.Client).
// The consumer uses it when ConsumerConfig.PollWait is set.
type WaitFetcher interface {
	BufferedFetcher
	FetchBufferedWait(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.FetchResult, error)
}

// Direct is the in-process Transport over a fabric.
type Direct struct{ Fabric *broker.Fabric }

// NewDirect wraps a fabric as a Transport.
func NewDirect(f *broker.Fabric) *Direct { return &Direct{Fabric: f} }

// Produce implements Transport.
func (d *Direct) Produce(identity, topic string, partition int, evs []event.Event, acks broker.Acks) (int64, error) {
	return d.Fabric.Produce(identity, topic, partition, evs, acks)
}

// Fetch implements Transport.
func (d *Direct) Fetch(identity, topic string, partition int, offset int64, maxEvents, maxBytes int) (broker.FetchResult, error) {
	return d.Fabric.Fetch(identity, topic, partition, offset, maxEvents, maxBytes)
}

// FetchBuffered implements BufferedFetcher: events append into
// buf.Events (reusing its capacity) and alias the partition log's
// records directly — the in-process path has no payload to copy, so
// buf.Arena is untouched.
func (d *Direct) FetchBuffered(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	res, err := d.Fabric.FetchInto(identity, topic, partition, offset, maxEvents, maxBytes, buf.Events[:0])
	if err != nil {
		return res, err
	}
	buf.Events = res.Events
	return res, nil
}

// FetchBufferedWait implements WaitFetcher: an empty fetch parks on the
// partition log's tail waiter up to wait.
func (d *Direct) FetchBufferedWait(identity, topic string, partition int, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.FetchResult, error) {
	res, err := d.Fabric.FetchWaitInto(identity, topic, partition, offset, maxEvents, maxBytes, wait, nil, buf.Events[:0])
	if err != nil {
		return res, err
	}
	buf.Events = res.Events
	return res, nil
}

// EndOffset implements Transport.
func (d *Direct) EndOffset(topic string, partition int) (int64, error) {
	return d.Fabric.EndOffset(topic, partition)
}

// StartOffset implements Transport.
func (d *Direct) StartOffset(topic string, partition int) (int64, error) {
	return d.Fabric.StartOffset(topic, partition)
}

// OffsetForTime implements Transport.
func (d *Direct) OffsetForTime(topic string, partition int, t time.Time) (int64, error) {
	return d.Fabric.OffsetForTime(topic, partition, t)
}

// TopicMeta implements Transport.
func (d *Direct) TopicMeta(topic string) (*cluster.TopicMeta, error) {
	return d.Fabric.Ctl.Topic(topic)
}

// JoinGroup implements Transport.
func (d *Direct) JoinGroup(groupID, memberID string, topics []string) (broker.Assignment, error) {
	return d.Fabric.Groups.Join(groupID, memberID, topics)
}

// LeaveGroup implements Transport.
func (d *Direct) LeaveGroup(groupID, memberID string) { d.Fabric.Groups.Leave(groupID, memberID) }

// Heartbeat implements Transport.
func (d *Direct) Heartbeat(groupID, memberID string) (int, error) {
	return d.Fabric.Groups.Heartbeat(groupID, memberID)
}

// Commit implements Transport.
func (d *Direct) Commit(groupID, memberID string, generation int, topic string, partition int, offset int64) error {
	return d.Fabric.Groups.Commit(groupID, memberID, generation, topic, partition, offset)
}

// Committed implements Transport.
func (d *Direct) Committed(groupID, topic string, partition int) int64 {
	return d.Fabric.Groups.Committed(groupID, topic, partition)
}
