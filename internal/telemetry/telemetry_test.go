package telemetry

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

func TestPowerRisesWithLoad(t *testing.T) {
	s := NewSampler(ResourceSpec{Name: "n1", Cores: 32, IdleWatts: 100, PeakWatts: 400})
	s.SetRunning(0)
	idle := s.Sample(t0).PowerWatts
	s.SetRunning(32)
	full := s.Sample(t0).PowerWatts
	if idle >= full {
		t.Fatalf("idle %.1f >= full %.1f", idle, full)
	}
	if math.Abs(idle-100) > 10 {
		t.Fatalf("idle power = %.1f, want ~100", idle)
	}
	if math.Abs(full-400) > 20 {
		t.Fatalf("full power = %.1f, want ~400", full)
	}
}

func TestUtilClamped(t *testing.T) {
	s := NewSampler(ResourceSpec{Name: "n", Cores: 4})
	s.SetRunning(100)
	if u := s.Sample(t0).CPUUtil; u != 1 {
		t.Fatalf("util = %v", u)
	}
	s.SetRunning(-5)
	if s.Running() != 0 {
		t.Fatalf("running = %d", s.Running())
	}
}

func TestSampleFieldsPopulated(t *testing.T) {
	s := NewSampler(ResourceSpec{Name: "node-7"})
	s.SetRunning(8)
	sm := s.Sample(t0)
	if sm.Resource != "node-7" || !sm.Time.Equal(t0) || sm.RunningTasks != 8 {
		t.Fatalf("sample = %+v", sm)
	}
	if sm.MemUtil < 0 || sm.MemUtil > 1 {
		t.Fatalf("mem = %v", sm.MemUtil)
	}
}

func TestMarginalPowerProperties(t *testing.T) {
	s := NewSampler(ResourceSpec{Name: "n", Cores: 16, IdleWatts: 100, PeakWatts: 300})
	// Sublinear power: marginal watts shrink as load grows.
	s.SetRunning(0)
	first := s.MarginalPower()
	s.SetRunning(10)
	later := s.MarginalPower()
	if first <= later {
		t.Fatalf("marginal power not diminishing: %.2f then %.2f", first, later)
	}
	// Oversubscription is infinitely expensive.
	s.SetRunning(16)
	if !math.IsInf(s.MarginalPower(), 1) {
		t.Fatal("oversubscribed marginal power should be +Inf")
	}
}

func TestMarginalPowerNonNegativeProperty(t *testing.T) {
	f := func(running uint8) bool {
		s := NewSampler(ResourceSpec{Name: "p", Cores: 64})
		s.SetRunning(int(running) % 64)
		return s.MarginalPower() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseIsDeterministicPerName(t *testing.T) {
	a1 := NewSampler(ResourceSpec{Name: "same"})
	a2 := NewSampler(ResourceSpec{Name: "same"})
	a1.SetRunning(4)
	a2.SetRunning(4)
	if a1.Sample(t0).PowerWatts != a2.Sample(t0).PowerWatts {
		t.Fatal("same-named samplers diverge")
	}
}

func TestFleetHeterogeneity(t *testing.T) {
	f := NewFleet(6)
	if len(f.Samplers) != 6 {
		t.Fatalf("fleet = %d", len(f.Samplers))
	}
	// The three profiles differ in idle power.
	idle := map[float64]bool{}
	for _, s := range f.Samplers[:3] {
		idle[s.Spec.IdleWatts] = true
	}
	if len(idle) != 3 {
		t.Fatalf("profiles not heterogeneous: %v", idle)
	}
	if f.ByName("resource-02") == nil {
		t.Fatal("ByName failed")
	}
	if f.ByName("ghost") != nil {
		t.Fatal("ByName invented a resource")
	}
	if f.TotalPower(t0) <= 0 {
		t.Fatal("total power should be positive")
	}
}

func TestDefaultsFilled(t *testing.T) {
	s := NewSampler(ResourceSpec{Name: "d"})
	if s.Spec.Cores <= 0 || s.Spec.PeakWatts <= s.Spec.IdleWatts {
		t.Fatalf("defaults = %+v", s.Spec)
	}
}
