// Package telemetry is the resource-monitoring substrate of the Online
// Task Scheduling use case (§VI-C): per-resource power and utilization
// samples, the data the paper's Python monitor collects with Intel RAPL
// and psutil. Real energy counters are unavailable here, so Sampler
// synthesizes a physically plausible signal: power follows utilization
// through an idle/peak linear model with deterministic noise, and
// utilization follows the tasks the resource is running.
package telemetry

import (
	"fmt"
	"math"
	"time"
)

// Sample is one telemetry observation for a resource.
type Sample struct {
	Resource string    `json:"resource"`
	Time     time.Time `json:"time"`
	// CPUUtil is 0..1 across all cores.
	CPUUtil float64 `json:"cpu_util"`
	// PowerWatts is the RAPL package power estimate.
	PowerWatts float64 `json:"power_watts"`
	// MemUtil is 0..1.
	MemUtil float64 `json:"mem_util"`
	// RunningTasks is the number of tasks currently placed here.
	RunningTasks int `json:"running_tasks"`
}

// ResourceSpec describes a managed resource's power envelope.
type ResourceSpec struct {
	// Name identifies the resource ("cluster-a/node-3").
	Name string
	// Cores is the CPU core count; each running task occupies one core.
	Cores int
	// IdleWatts and PeakWatts bound the linear power model.
	IdleWatts float64
	PeakWatts float64
	// EfficiencyJPerTask is the marginal energy per unit task work,
	// distinguishing efficient from inefficient resources for the
	// scheduler's placement decisions.
	EfficiencyJPerTask float64
}

func (r *ResourceSpec) fill() {
	if r.Cores <= 0 {
		r.Cores = 32
	}
	if r.IdleWatts == 0 {
		r.IdleWatts = 90
	}
	if r.PeakWatts == 0 {
		r.PeakWatts = 350
	}
	if r.EfficiencyJPerTask == 0 {
		r.EfficiencyJPerTask = 50
	}
}

// Sampler produces telemetry for one resource.
type Sampler struct {
	Spec ResourceSpec
	// running is set by the workload (the scheduler's placements).
	running int
	rng     uint64
}

// NewSampler creates a sampler for the resource.
func NewSampler(spec ResourceSpec) *Sampler {
	spec.fill()
	var seed uint64 = 0x853C49E6748FEA9B
	for _, c := range spec.Name {
		seed = seed*31 + uint64(c)
	}
	return &Sampler{Spec: spec, rng: seed}
}

// SetRunning updates the resource's placed-task count.
func (s *Sampler) SetRunning(n int) {
	if n < 0 {
		n = 0
	}
	s.running = n
}

// Running returns the placed-task count.
func (s *Sampler) Running() int { return s.running }

func (s *Sampler) noise() float64 {
	s.rng = s.rng*6364136223846793005 + 1442695040888963407
	return (float64(s.rng>>11)/float64(1<<53) - 0.5) * 2 // [-1, 1)
}

// Sample reads the current synthetic telemetry at time now.
func (s *Sampler) Sample(now time.Time) Sample {
	util := float64(s.running) / float64(s.Spec.Cores)
	if util > 1 {
		util = 1
	}
	// Power: idle + (peak-idle)·util^0.9 (sublinear, as real CPUs are),
	// plus ±2 % measurement noise.
	power := s.Spec.IdleWatts + (s.Spec.PeakWatts-s.Spec.IdleWatts)*math.Pow(util, 0.9)
	power *= 1 + 0.02*s.noise()
	mem := 0.1 + 0.7*util + 0.02*s.noise()
	if mem < 0 {
		mem = 0
	}
	if mem > 1 {
		mem = 1
	}
	return Sample{
		Resource:     s.Spec.Name,
		Time:         now,
		CPUUtil:      util,
		PowerWatts:   power,
		MemUtil:      mem,
		RunningTasks: s.running,
	}
}

// MarginalPower estimates the extra watts one more task would draw —
// the quantity an energy-aware scheduler minimizes.
func (s *Sampler) MarginalPower() float64 {
	cur := float64(s.running) / float64(s.Spec.Cores)
	next := float64(s.running+1) / float64(s.Spec.Cores)
	if next > 1 {
		// Oversubscribed: marginal power is ~0 but throughput suffers;
		// report a large penalty so schedulers avoid it.
		return math.Inf(1)
	}
	span := s.Spec.PeakWatts - s.Spec.IdleWatts
	return span * (math.Pow(next, 0.9) - math.Pow(cur, 0.9))
}

// Fleet is a convenience set of heterogeneous resources.
type Fleet struct {
	Samplers []*Sampler
}

// NewFleet builds n resources alternating efficient and inefficient
// profiles, mirroring the paper's federated mix from edge devices to
// supercomputers.
func NewFleet(n int) *Fleet {
	f := &Fleet{}
	for i := 0; i < n; i++ {
		spec := ResourceSpec{Name: fmt.Sprintf("resource-%02d", i)}
		switch i % 3 {
		case 0: // efficient HPC node
			spec.Cores = 64
			spec.IdleWatts = 120
			spec.PeakWatts = 300
		case 1: // mid-range cloud VM
			spec.Cores = 16
			spec.IdleWatts = 60
			spec.PeakWatts = 220
		default: // power-hungry legacy node
			spec.Cores = 32
			spec.IdleWatts = 150
			spec.PeakWatts = 500
		}
		f.Samplers = append(f.Samplers, NewSampler(spec))
	}
	return f
}

// ByName returns the sampler for a resource name.
func (f *Fleet) ByName(name string) *Sampler {
	for _, s := range f.Samplers {
		if s.Spec.Name == name {
			return s
		}
	}
	return nil
}

// TotalPower sums instantaneous power across the fleet.
func (f *Fleet) TotalPower(now time.Time) float64 {
	var w float64
	for _, s := range f.Samplers {
		w += s.Sample(now).PowerWatts
	}
	return w
}
