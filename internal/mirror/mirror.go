// Package mirror replicates topics between fabrics, the role Kafka
// MirrorMaker plays in §IV-F ("Topics may be replicated and synchronized
// by using the Kafka MirrorMaker tool") for cross-region reliability.
// A Mirror consumes a topic on the source fabric and re-produces every
// event to the destination, preserving keys and headers, with
// at-least-once semantics driven by committed offsets.
package mirror

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/vclock"
)

// Config controls a mirror flow.
type Config struct {
	// Topic is the source topic; DestTopic defaults to the same name.
	Topic     string
	DestTopic string
	// Group is the mirror's consumer group on the source
	// (default "mirror-<topic>").
	Group string
	// BatchSize bounds one transfer (default 500).
	BatchSize int
	// Poll is the idle poll interval (default 50 ms).
	Poll time.Duration
	// Clock supplies time (default real).
	Clock vclock.Clock
}

func (c *Config) fill() error {
	if c.Topic == "" {
		return fmt.Errorf("mirror: config needs a Topic")
	}
	if c.DestTopic == "" {
		c.DestTopic = c.Topic
	}
	if c.Group == "" {
		c.Group = "mirror-" + c.Topic
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 500
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	return nil
}

// Mirror copies one topic between two fabrics.
type Mirror struct {
	cfg  Config
	src  client.Transport
	dst  client.Transport
	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	copied  int64
	started bool
	stopped bool
}

// New builds a mirror between transports. The destination topic is
// created on demand if dstFabric is non-nil.
func New(src, dst client.Transport, dstFabric *broker.Fabric, cfg Config) (*Mirror, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	// Ensure the destination topic exists, mirroring source partitioning.
	meta, err := src.TopicMeta(cfg.Topic)
	if err != nil {
		return nil, fmt.Errorf("mirror: source topic: %w", err)
	}
	if dstFabric != nil {
		if _, err := dstFabric.CreateTopic(cfg.DestTopic, "", cluster.TopicConfig{
			Partitions:        meta.Config.Partitions,
			ReplicationFactor: meta.Config.ReplicationFactor,
			Retention:         meta.Config.Retention,
		}); err != nil && err != cluster.ErrTopicExists {
			// Idempotent create returns the existing topic for the same
			// owner; a genuine conflict is fatal.
			if _, terr := dstFabric.Ctl.Topic(cfg.DestTopic); terr != nil {
				return nil, fmt.Errorf("mirror: destination topic: %w", err)
			}
		}
	}
	return &Mirror{cfg: cfg, src: src, dst: dst, stop: make(chan struct{})}, nil
}

// Start launches the replication loop.
func (m *Mirror) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.wg.Add(1)
	go m.run()
}

// Stop halts replication and waits for the loop to exit.
func (m *Mirror) Stop() {
	m.mu.Lock()
	if m.stopped || !m.started {
		m.stopped = true
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
}

// Copied returns the number of events replicated so far.
func (m *Mirror) Copied() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.copied
}

func (m *Mirror) run() {
	defer m.wg.Done()
	meta, err := m.src.TopicMeta(m.cfg.Topic)
	if err != nil {
		return
	}
	positions := make(map[int]int64, meta.Config.Partitions)
	for p := 0; p < meta.Config.Partitions; p++ {
		if off := m.src.Committed(m.cfg.Group, m.cfg.Topic, p); off >= 0 {
			positions[p] = off
			continue
		}
		start, err := m.src.StartOffset(m.cfg.Topic, p)
		if err != nil {
			start = 0
		}
		positions[p] = start
	}
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		moved := false
		for p := range positions {
			res, err := m.src.Fetch("", m.cfg.Topic, p, positions[p], m.cfg.BatchSize, 0)
			if err != nil || len(res.Events) == 0 {
				continue
			}
			// Preserve partition affinity: events mirrored to the same
			// partition index keep their relative order.
			if _, err := m.dst.Produce("", m.cfg.DestTopic, p, res.Events, broker.AcksLeader); err != nil {
				continue // retry next round; offsets uncommitted
			}
			last := res.Events[len(res.Events)-1].Offset + 1
			positions[p] = last
			if f, ok := m.src.(*client.Direct); ok {
				f.Fabric.Groups.CommitDirect(m.cfg.Group, m.cfg.Topic, p, last)
			}
			m.mu.Lock()
			m.copied += int64(len(res.Events))
			m.mu.Unlock()
			moved = true
		}
		if !moved {
			select {
			case <-m.stop:
				return
			case <-m.cfg.Clock.After(m.cfg.Poll):
			}
		}
	}
}
