package mirror

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
)

func twoFabrics(t *testing.T) (*broker.Fabric, *broker.Fabric) {
	t.Helper()
	mk := func() *broker.Fabric {
		f := broker.NewFabric(nil)
		if err := f.AddBrokers(2, 2, 8); err != nil {
			t.Fatal(err)
		}
		return f
	}
	return mk(), mk()
}

func produceN(t *testing.T, f *broker.Fabric, topic string, n int) {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{Key: []byte(fmt.Sprintf("k%d", i%4)), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	if _, err := f.Produce("", topic, -1, evs, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
}

func waitCopied(t *testing.T, m *Mirror, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.Copied() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("copied = %d, want %d", m.Copied(), want)
}

func TestMirrorCopiesExistingAndNewEvents(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := src.CreateTopic("geo", "", cluster.TopicConfig{Partitions: 2}); err != nil {
		t.Fatal(err)
	}
	produceN(t, src, "geo", 50)
	m, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "geo", Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	waitCopied(t, m, 50)
	// Events produced after the mirror started also replicate.
	produceN(t, src, "geo", 25)
	waitCopied(t, m, 75)
	// Destination holds everything, partition-aligned.
	var total int64
	for p := 0; p < 2; p++ {
		srcEnd, _ := src.EndOffset("geo", p)
		dstEnd, _ := dst.EndOffset("geo", p)
		if srcEnd != dstEnd {
			t.Fatalf("partition %d: src %d != dst %d", p, srcEnd, dstEnd)
		}
		total += dstEnd
	}
	if total != 75 {
		t.Fatalf("total mirrored = %d", total)
	}
}

func TestMirrorPreservesOrderWithinPartition(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := src.CreateTopic("ord", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, src, "ord", 30)
	m, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "ord", Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	waitCopied(t, m, 30)
	res, err := dst.Fetch("", "ord", 0, 0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range res.Events {
		if string(ev.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("order broken at %d: %s", i, ev.Value)
		}
	}
}

func TestMirrorRenamesTopic(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := src.CreateTopic("a", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, src, "a", 5)
	m, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "a", DestTopic: "b", Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	waitCopied(t, m, 5)
	end, err := dst.EndOffset("b", 0)
	if err != nil || end != 5 {
		t.Fatalf("dest topic b end = %d, %v", end, err)
	}
}

func TestMirrorResumesFromCommit(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := src.CreateTopic("r", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceN(t, src, "r", 10)
	m1, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "r", Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	waitCopied(t, m1, 10)
	m1.Stop()
	// More events arrive while the mirror is down.
	produceN(t, src, "r", 10)
	m2, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "r", Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m2.Start()
	defer m2.Stop()
	waitCopied(t, m2, 10) // only the new 10; no duplicates
	end, _ := dst.EndOffset("r", 0)
	if end != 20 {
		t.Fatalf("dest end = %d, want 20 (no dupes, no loss)", end)
	}
}

func TestMirrorMissingSourceTopic(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "ghost"}); err == nil {
		t.Fatal("missing source accepted")
	}
}

func TestMirrorConfigValidation(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{}); err == nil {
		t.Fatal("empty topic accepted")
	}
}

func TestMirrorStopIsIdempotent(t *testing.T) {
	src, dst := twoFabrics(t)
	if _, err := src.CreateTopic("x", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := New(client.NewDirect(src), client.NewDirect(dst), dst, Config{Topic: "x"})
	if err != nil {
		t.Fatal(err)
	}
	m.Stop() // never started
	m.Stop()
}
