package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over one or more
// registries. A broker process serves its fabric-wide registry plus one
// registry per wire listener, distinguished by a label set, from a
// single /metrics endpoint — the off-broker half of the observability
// plane the paper delegates to CloudWatch/Grafana.

// PromSource couples a registry with the label set its metrics carry,
// e.g. `broker="1"`. Empty labels are fine (fabric-wide metrics).
type PromSource struct {
	Labels string
	Reg    *Registry
}

// PromName maps an internal dotted metric name to a legal Prometheus
// metric name: an octopus_ prefix, with every character outside
// [a-zA-Z0-9_:] rewritten to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 8)
	b.WriteString("octopus_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label block, merging the source labels with an
// optional extra pair (le/quantile).
func promLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	}
	return "{" + base + "," + extra + "}"
}

// typeOnce emits the # TYPE header the first time a metric name is
// seen across sources; repeating it per source would be malformed.
func typeOnce(w io.Writer, seen map[string]bool, name, kind string) {
	if seen[name] {
		return
	}
	seen[name] = true
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// WritePrometheus renders every metric of every source in Prometheus
// text format. Counters and gauges map directly; bucketed histograms
// emit cumulative le-buckets (non-empty bounds only, plus +Inf);
// reservoir histograms emit a quantile summary in milliseconds.
func WritePrometheus(w io.Writer, srcs ...PromSource) {
	seen := make(map[string]bool)
	exports := make([]Export, len(srcs))
	for i, s := range srcs {
		exports[i] = s.Reg.Export()
	}
	for i, s := range srcs {
		ex := &exports[i]
		for _, c := range ex.Counters {
			n := PromName(c.Name)
			typeOnce(w, seen, n, "counter")
			fmt.Fprintf(w, "%s%s %d\n", n, promLabels(s.Labels, ""), c.Value)
		}
		for _, g := range ex.Gauges {
			n := PromName(g.Name)
			typeOnce(w, seen, n, "gauge")
			fmt.Fprintf(w, "%s%s %d\n", n, promLabels(s.Labels, ""), g.Value)
		}
		for _, h := range ex.Hists {
			n := PromName(h.Name)
			typeOnce(w, seen, n, "histogram")
			var cum int64
			for b := 0; b < NumBuckets; b++ {
				if h.Snap.Buckets[b] == 0 {
					continue
				}
				cum += h.Snap.Buckets[b]
				_, hi := BucketBounds(b)
				fmt.Fprintf(w, "%s_bucket%s %d\n", n, promLabels(s.Labels, fmt.Sprintf(`le="%d"`, hi)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", n, promLabels(s.Labels, `le="+Inf"`), h.Snap.Count)
			fmt.Fprintf(w, "%s_sum%s %d\n", n, promLabels(s.Labels, ""), h.Snap.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", n, promLabels(s.Labels, ""), h.Snap.Count)
		}
		for _, h := range ex.Summaries {
			n := PromName(h.Name)
			typeOnce(w, seen, n, "summary")
			fmt.Fprintf(w, "%s%s %g\n", n, promLabels(s.Labels, `quantile="0.5"`), h.Summary.P50Ms)
			fmt.Fprintf(w, "%s%s %g\n", n, promLabels(s.Labels, `quantile="0.99"`), h.Summary.P99Ms)
			fmt.Fprintf(w, "%s_sum%s %g\n", n, promLabels(s.Labels, ""), h.Summary.SumMs)
			fmt.Fprintf(w, "%s_count%s %d\n", n, promLabels(s.Labels, ""), h.Summary.Count)
		}
	}
}

// Handler serves WritePrometheus over HTTP. get is called per scrape so
// the source list can track brokers joining or leaving.
func Handler(get func() []PromSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, get()...)
	})
}
