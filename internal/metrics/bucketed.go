package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// BucketHist is a lock-free log-linear histogram built for the 0-alloc
// data-plane hot paths: Observe is three uncontended atomic adds into a
// fixed bucket array — no mutex, no map lookup, no allocation, constant
// time regardless of the value. It trades the reservoir Histogram's
// exact samples for bounded relative error: each power-of-two range is
// split into 16 linear sub-buckets, so any quantile is reported within
// 1/16 (6.25%) of the true value. Values are unit-agnostic int64s; by
// convention metric names carry the unit suffix (_ns, _bytes, _events).
//
// The first bhSub buckets are exact (width 1) so tiny distributions —
// batch sizes of 1..15 events — lose no resolution at all. Values at or
// above 2^(bhMaxExp+1) (about 18 minutes when observing nanoseconds)
// clamp into the last bucket.
type BucketHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [bhNumBuckets]atomic.Int64
}

const (
	bhSubBits = 4
	// bhSub linear sub-buckets per power-of-two range.
	bhSub = 1 << bhSubBits
	// bhMaxExp is the exponent of the last resolved power-of-two range.
	bhMaxExp = 39
	// bhNumBuckets: bhSub exact unit buckets plus bhSub per octave for
	// exponents bhSubBits..bhMaxExp.
	bhNumBuckets = (bhMaxExp - bhSubBits + 2) * bhSub
)

// NumBuckets is the fixed bucket count of every BucketHist, exported so
// wire codecs and merge buffers can size arrays without reaching into
// package internals.
const NumBuckets = bhNumBuckets

// bucketIndex maps a value to its bucket in constant time: exact for
// 0..15, then the top 4 mantissa bits below the leading 1 select the
// linear sub-bucket within the value's power-of-two range.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < bhSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	if exp > bhMaxExp {
		return bhNumBuckets - 1
	}
	sub := (u >> uint(exp-bhSubBits)) & (bhSub - 1)
	return (exp-bhSubBits+1)*bhSub + int(sub)
}

// BucketBounds returns bucket i's value range [lo, hi).
func BucketBounds(i int) (lo, hi int64) {
	if i < 0 {
		return 0, 0
	}
	if i >= bhNumBuckets {
		i = bhNumBuckets - 1
	}
	if i < bhSub {
		return int64(i), int64(i) + 1
	}
	block := i / bhSub // >= 1
	sub := i % bhSub
	exp := uint(block + bhSubBits - 1)
	lo = int64(1)<<exp + int64(sub)<<(exp-bhSubBits)
	return lo, lo + int64(1)<<(exp-bhSubBits)
}

// Observe records one value. Safe for unsynchronized concurrent use;
// never allocates.
func (h *BucketHist) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *BucketHist) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *BucketHist) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *BucketHist) Sum() int64 { return h.sum.Load() }

// Snapshot captures the histogram's current state. The capture is
// weakly consistent: observations racing the snapshot may be partially
// included (count without bucket or vice versa), which is fine for
// monitoring — every completed observation before the call is included,
// and the skew is at most the handful of in-flight Observes.
func (h *BucketHist) Snapshot() BucketSnapshot {
	var s BucketSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// BucketSnapshot is a point-in-time copy of a BucketHist, the unit of
// cross-broker aggregation: snapshots from different brokers merge by
// plain addition, and quantiles are answered on the merged result.
type BucketSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [bhNumBuckets]int64
}

// Merge adds o's observations into s.
func (s *BucketSnapshot) Merge(o *BucketSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed value, 0 when empty.
func (s *BucketSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0..1) estimated by linear
// interpolation within the target bucket. The error is bounded by the
// bucket width: at most 1/16 of the value.
func (s *BucketSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	target := int64(q*float64(s.Count-1)) + 1
	var cum int64
	for i := range s.Buckets {
		c := s.Buckets[i]
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := BucketBounds(i)
			frac := float64(target-cum) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	// Racy snapshot undercount: fall back to the top non-empty bucket.
	for i := bhNumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			_, hi := BucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}
