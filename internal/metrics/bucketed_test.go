package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundsRoundTrip(t *testing.T) {
	// Every observed value must land in a bucket whose bounds contain it.
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<39 - 1, 1 << 39}
	for _, v := range vals {
		i := bucketIndex(v)
		lo, hi := BucketBounds(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d -> bucket %d [%d,%d)", v, i, lo, hi)
		}
	}
	// Negative values clamp to bucket 0, oversized to the last bucket.
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative value bucket = %d", bucketIndex(-5))
	}
	if bucketIndex(1<<55) != bhNumBuckets-1 {
		t.Fatalf("huge value bucket = %d", bucketIndex(1<<55))
	}
}

func TestBucketBoundsContiguous(t *testing.T) {
	for i := 1; i < bhNumBuckets; i++ {
		_, prevHi := BucketBounds(i - 1)
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ends at %d", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty range [%d,%d)", i, lo, hi)
		}
	}
}

func TestBucketHistConcurrentObserve(t *testing.T) {
	var h BucketHist
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var inBuckets int64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
}

// TestBucketHistQuantileAccuracy checks the estimated quantiles against
// the exact sample quantiles on known distributions; the log-linear
// layout guarantees relative error within one sub-bucket (1/16).
func TestBucketHistQuantileAccuracy(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform":     func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return 900_000 + r.Int63n(100_000)
			}
			return 1_000 + r.Int63n(1_000)
		},
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var h BucketHist
			exact := make([]int64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := gen(rng)
				h.Observe(v)
				exact = append(exact, v)
			}
			sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
			s := h.Snapshot()
			for _, q := range []float64{0.5, 0.9, 0.99} {
				want := float64(exact[int(q*float64(len(exact)-1))])
				got := s.Quantile(q)
				// One sub-bucket of relative error plus a unit of slack for
				// the tiny exact buckets.
				tol := want/8 + 2
				if math.Abs(got-want) > tol {
					t.Fatalf("q%.2f = %.0f, exact %.0f (tol %.0f)", q, got, want, tol)
				}
			}
		})
	}
}

func TestBucketSnapshotMerge(t *testing.T) {
	// Merging per-broker snapshots must equal one histogram that saw
	// every observation.
	rng := rand.New(rand.NewSource(7))
	var a, b, all BucketHist
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 22)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	merged.Merge(&bs)
	want := all.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	if merged.Buckets != want.Buckets {
		t.Fatal("merged buckets differ from combined histogram")
	}
	if got, want := merged.Quantile(0.5), want.Quantile(0.5); got != want {
		t.Fatalf("merged p50 = %v, combined p50 = %v", got, want)
	}
}

func TestBucketHistEmpty(t *testing.T) {
	var h BucketHist
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Count != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestSeriesBounded(t *testing.T) {
	s := NewSeries("leak")
	for i := 0; i < 100000; i++ {
		s.Record(time.Unix(int64(i), 0), float64(i))
	}
	pts := s.Points()
	if len(pts) >= maxSeriesPoints {
		t.Fatalf("series grew to %d points, cap is %d", len(pts), maxSeriesPoints)
	}
	// Downsampling keeps temporal coverage: first point survives and the
	// retained points stay in record order.
	if pts[0].V != 0 {
		t.Fatalf("first retained point = %v", pts[0].V)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V <= pts[i-1].V {
			t.Fatalf("points out of order at %d", i)
		}
	}
}

func TestRegistryExportAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("fabric.produced").Add(3)
	r.Gauge("wire.sessions_open").Set(2)
	r.BucketHist("fabric.produce_ns").Observe(1500)
	r.Histogram("legacy.latency").ObserveMs(4)
	ex := r.Export()
	if len(ex.Counters) != 1 || len(ex.Gauges) != 1 || len(ex.Hists) != 1 || len(ex.Summaries) != 1 {
		t.Fatalf("export shape: %+v", ex)
	}
	var sb strings.Builder
	WritePrometheus(&sb, PromSource{Labels: `broker="0"`, Reg: r})
	out := sb.String()
	for _, want := range []string{
		"# TYPE octopus_fabric_produced counter",
		`octopus_fabric_produced{broker="0"} 3`,
		`octopus_wire_sessions_open{broker="0"} 2`,
		"# TYPE octopus_fabric_produce_ns histogram",
		`octopus_fabric_produce_ns_bucket{broker="0",le="+Inf"} 1`,
		"octopus_fabric_produce_ns_count{broker=\"0\"} 1",
		`octopus_legacy_latency{broker="0",quantile="0.5"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// The same metric from a second source must not repeat its TYPE line.
	var sb2 strings.Builder
	WritePrometheus(&sb2, PromSource{Labels: `broker="0"`, Reg: r}, PromSource{Labels: `broker="1"`, Reg: r})
	if strings.Count(sb2.String(), "# TYPE octopus_fabric_produced counter") != 1 {
		t.Fatalf("TYPE line repeated:\n%s", sb2.String())
	}
}
