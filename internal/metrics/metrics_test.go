package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramExactQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.ObserveMs(float64(i))
	}
	if got := h.Median(); math.Abs(got-50.5) > 1 {
		t.Fatalf("median = %v", got)
	}
	if got := h.P99(); math.Abs(got-99) > 1.5 {
		t.Fatalf("p99 = %v", got)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramEmptyIsZero(t *testing.T) {
	h := NewHistogram(0)
	if h.Median() != 0 || h.P99() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(250 * time.Millisecond)
	if got := h.Median(); math.Abs(got-250) > 1e-9 {
		t.Fatalf("median = %v ms", got)
	}
}

func TestHistogramReservoirStaysBounded(t *testing.T) {
	h := NewHistogram(100)
	for i := 0; i < 10000; i++ {
		h.ObserveMs(float64(i % 50))
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if len(h.samples) != 100 {
		t.Fatalf("samples = %d, want capped at 100", len(h.samples))
	}
	// All values are in [0,50), so quantiles must be too.
	if q := h.Quantile(0.5); q < 0 || q >= 50 {
		t.Fatalf("median = %v out of range", q)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(0)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.ObserveMs(v)
		}
		q1 := h.Quantile(0.25)
		q2 := h.Quantile(0.5)
		q3 := h.Quantile(0.99)
		return q1 <= q2 && q2 <= q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesRecordsInOrder(t *testing.T) {
	s := NewSeries("queue_depth")
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		s.Record(base.Add(time.Duration(i)*time.Second), float64(i*10))
	}
	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[4].V != 40 {
		t.Fatalf("last = %v", pts[4])
	}
	if s.MaxValue() != 40 {
		t.Fatalf("max = %v", s.MaxValue())
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("counter not shared")
	}
	g := r.Gauge("g")
	g.Set(7)
	if r.Gauge("g").Value() != 7 {
		t.Fatal("gauge not shared")
	}
	h := r.Histogram("h")
	h.ObserveMs(1)
	if r.Histogram("h").Count() != 1 {
		t.Fatal("histogram not shared")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(1)
	lines := r.Snapshot()
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("not sorted: %v", lines)
		}
	}
}
