// Package metrics provides the lightweight instrumentation used across
// Octopus: counters, gauges, latency histograms with percentile queries,
// and time-series recorders for the figures in the evaluation. It stands
// in for the CloudWatch/Grafana monitoring stack of the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records duration observations and answers percentile queries.
// It keeps exact samples up to a cap and then switches to reservoir
// sampling, which is accurate enough for P50/P99 reporting at the volumes
// the benchmarks generate.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // milliseconds
	count   int64
	sum     float64
	max     float64
	cap     int
	rng     uint64
}

// NewHistogram creates a histogram retaining up to capSamples samples
// (8192 if capSamples <= 0).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 8192
	}
	return &Histogram{cap: capSamples, rng: 0x9E3779B97F4A7C15}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveMs(float64(d) / float64(time.Millisecond)) }

// ObserveMs records a latency expressed in milliseconds.
func (h *Histogram) ObserveMs(ms float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += ms
	if ms > h.max {
		h.max = ms
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, ms)
		return
	}
	// Vitter's Algorithm R reservoir replacement.
	h.rng = h.rng*6364136223846793005 + 1442695040888963407
	idx := int(h.rng % uint64(h.count))
	if idx < h.cap {
		h.samples[idx] = ms
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation in milliseconds.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the maximum observation in milliseconds.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0..1) in milliseconds.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile in milliseconds.
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// P99 returns the 99th percentile in milliseconds.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Point is one sample of a time series.
type Point struct {
	T time.Time
	V float64
}

// Series records a named time series, used to regenerate the figure data
// (queue depth over time, concurrent invocations over time, ...).
type Series struct {
	mu     sync.Mutex
	Name   string
	points []Point
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample.
func (s *Series) Record(t time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = append(s.points, Point{T: t, V: v})
}

// Points returns a copy of the samples in record order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// MaxValue returns the largest recorded value, or 0 if empty.
func (s *Series) MaxValue() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Registry is a named collection of metrics, one per component instance.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders all metrics as sorted "name value" lines, in the
// spirit of a Prometheus exposition, for the admin consoles.
func (r *Registry) Snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, g.Value()))
	}
	for n, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s count=%d p50=%.2fms p99=%.2fms", n, h.Count(), h.Median(), h.P99()))
	}
	sort.Strings(lines)
	return lines
}
