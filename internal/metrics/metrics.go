// Package metrics provides the lightweight instrumentation used across
// Octopus: counters, gauges, latency histograms with percentile queries,
// and time-series recorders for the figures in the evaluation. It stands
// in for the CloudWatch/Grafana monitoring stack of the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records duration observations and answers percentile queries.
// It keeps exact samples up to a cap and then switches to reservoir
// sampling, which is accurate enough for P50/P99 reporting at the volumes
// the benchmarks generate.
type Histogram struct {
	mu      sync.Mutex
	samples []float64 // milliseconds
	count   int64
	sum     float64
	max     float64
	cap     int
	rng     uint64
}

// NewHistogram creates a histogram retaining up to capSamples samples
// (8192 if capSamples <= 0).
func NewHistogram(capSamples int) *Histogram {
	if capSamples <= 0 {
		capSamples = 8192
	}
	return &Histogram{cap: capSamples, rng: 0x9E3779B97F4A7C15}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveMs(float64(d) / float64(time.Millisecond)) }

// ObserveMs records a latency expressed in milliseconds.
func (h *Histogram) ObserveMs(ms float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += ms
	if ms > h.max {
		h.max = ms
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, ms)
		return
	}
	// Vitter's Algorithm R reservoir replacement.
	h.rng = h.rng*6364136223846793005 + 1442695040888963407
	idx := int(h.rng % uint64(h.count))
	if idx < h.cap {
		h.samples[idx] = ms
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation in milliseconds.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the maximum observation in milliseconds.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0..1) in milliseconds. Each call
// copies and sorts the sample set; callers that need several quantiles
// of one consistent view (an exposition pass) should use Summary, which
// sorts once for all of them.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	s := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// quantileSorted interpolates the q-quantile of an ascending sample set.
func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// HistogramSummary is one consistent view of a Histogram: count, mean,
// max and the reporting quantiles, all from a single sorted copy of the
// sample set.
type HistogramSummary struct {
	Count         int64
	MeanMs, MaxMs float64
	P50Ms, P99Ms  float64
	SumMs         float64
}

// Summary takes one consistent snapshot of the histogram — one lock
// acquisition, one sample copy, one sort — and derives every reported
// statistic from it. The seed's Snapshot called Count/Median/P99
// separately, copying and sorting the full sample slice under the lock
// three times per exposition line; Summary is the single-pass
// replacement.
func (h *Histogram) Summary() HistogramSummary {
	h.mu.Lock()
	s := append([]float64(nil), h.samples...)
	out := HistogramSummary{Count: h.count, MaxMs: h.max, SumMs: h.sum}
	if h.count > 0 {
		out.MeanMs = h.sum / float64(h.count)
	}
	h.mu.Unlock()
	if len(s) == 0 {
		return out
	}
	sort.Float64s(s)
	out.P50Ms = quantileSorted(s, 0.5)
	out.P99Ms = quantileSorted(s, 0.99)
	return out
}

// Median returns the 50th percentile in milliseconds.
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// P99 returns the 99th percentile in milliseconds.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Point is one sample of a time series.
type Point struct {
	T time.Time
	V float64
}

// maxSeriesPoints bounds a Series' retained samples. When the cap is
// reached the series halves itself by dropping every other retained
// point and doubles its keep stride, so memory stays bounded while the
// retained points still span the whole recording — a long-running
// broker degrades resolution instead of leaking.
const maxSeriesPoints = 8192

// Series records a named time series, used to regenerate the figure data
// (queue depth over time, concurrent invocations over time, ...).
// Retention is bounded: past maxSeriesPoints the series downsamples,
// keeping every 2nd, then 4th, ... sample.
type Series struct {
	mu     sync.Mutex
	Name   string
	points []Point
	// stride is the current keep interval (1 = keep everything); skip
	// counts samples dropped since the last kept one.
	stride int
	skip   int
}

// NewSeries creates an empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample, subject to the retention bound.
func (s *Series) Record(t time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stride == 0 {
		s.stride = 1
	}
	s.skip++
	if s.skip < s.stride {
		return
	}
	s.skip = 0
	s.points = append(s.points, Point{T: t, V: v})
	if len(s.points) >= maxSeriesPoints {
		kept := s.points[:0]
		for i := 0; i < len(s.points); i += 2 {
			kept = append(kept, s.points[i])
		}
		s.points = kept
		s.stride *= 2
	}
}

// Points returns a copy of the samples in record order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// MaxValue returns the largest recorded value, or 0 if empty.
func (s *Series) MaxValue() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Registry is a named collection of metrics, one per component instance.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	bhists     map[string]*BucketHist
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		bhists:     make(map[string]*BucketHist),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// BucketHist returns (creating if needed) the named lock-free bucketed
// histogram. Callers on hot paths resolve the handle once at setup and
// hold it: the lookup takes the registry mutex.
func (r *Registry) BucketHist(name string) *BucketHist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.bhists[name]
	if !ok {
		h = &BucketHist{}
		r.bhists[name] = h
	}
	return h
}

// Snapshot renders all metrics as sorted "name value" lines, in the
// spirit of a Prometheus exposition, for the admin consoles. Each
// reservoir histogram contributes one line computed from a single
// consistent Summary (one copy + sort), not one per statistic.
func (r *Registry) Snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", n, g.Value()))
	}
	for n, h := range r.histograms {
		s := h.Summary()
		lines = append(lines, fmt.Sprintf("histogram %s count=%d p50=%.2fms p99=%.2fms", n, s.Count, s.P50Ms, s.P99Ms))
	}
	for n, h := range r.bhists {
		s := h.Snapshot()
		lines = append(lines, fmt.Sprintf("bucket_hist %s count=%d p50=%.0f p99=%.0f", n, s.Count, s.Quantile(0.5), s.Quantile(0.99)))
	}
	sort.Strings(lines)
	return lines
}

// NamedValue is one exported counter or gauge.
type NamedValue struct {
	Name  string
	Value int64
}

// NamedBucketHist is one exported bucketed histogram.
type NamedBucketHist struct {
	Name string
	Snap BucketSnapshot
}

// NamedSummary is one exported reservoir histogram, reduced to its
// reporting statistics (milliseconds).
type NamedSummary struct {
	Name    string
	Summary HistogramSummary
}

// Export is a registry's full content at one point in time — the
// payload behind both the Prometheus endpoint and the wire-level stats
// op. Slices are sorted by name.
type Export struct {
	Counters  []NamedValue
	Gauges    []NamedValue
	Hists     []NamedBucketHist
	Summaries []NamedSummary
}

// Export captures every metric in the registry. The registry mutex is
// held only while collecting handles; histogram snapshots and summary
// sorts run outside it.
func (r *Registry) Export() Export {
	r.mu.Lock()
	counters := make([]NamedValue, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, NamedValue{Name: n, Value: c.Value()})
	}
	gauges := make([]NamedValue, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, NamedValue{Name: n, Value: g.Value()})
	}
	hh := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.histograms))
	for n, h := range r.histograms {
		hh = append(hh, struct {
			name string
			h    *Histogram
		}{n, h})
	}
	bh := make([]struct {
		name string
		h    *BucketHist
	}, 0, len(r.bhists))
	for n, h := range r.bhists {
		bh = append(bh, struct {
			name string
			h    *BucketHist
		}{n, h})
	}
	r.mu.Unlock()

	out := Export{Counters: counters, Gauges: gauges}
	for _, e := range hh {
		out.Summaries = append(out.Summaries, NamedSummary{Name: e.name, Summary: e.h.Summary()})
	}
	for _, e := range bh {
		out.Hists = append(out.Hists, NamedBucketHist{Name: e.name, Snap: e.h.Snapshot()})
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Hists, func(i, j int) bool { return out.Hists[i].Name < out.Hists[j].Name })
	sort.Slice(out.Summaries, func(i, j int) bool { return out.Summaries[i].Name < out.Summaries[j].Name })
	return out
}
