package clusternet

import (
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/replication"
	"repro/internal/wire"
)

// replicationIdentity is the identity the per-broker replication
// managers authenticate as on clusters that require credentials.
const replicationIdentity = "octopus-replication"

// wireReplicaClient adapts a routed wire.Client to replication.Client:
// follower fetch loops pull over real OpReplicaFetch/OpReplicaAck
// round trips, auto-routing to the current leader like any data-plane
// caller.
type wireReplicaClient struct{ c *wire.Client }

func (w wireReplicaClient) ReplicaFetch(follower int, topic string, partition int, epoch, offset int64, maxEvents, maxBytes int, wait time.Duration, buf *broker.FetchBuffer) (broker.ReplicaFetchResult, error) {
	batch, err := w.c.ReplicaFetch(follower, topic, partition, epoch, offset, maxEvents, maxBytes, wait, buf)
	if err != nil {
		return broker.ReplicaFetchResult{}, err
	}
	// Decoded Key/Value bytes alias buf's arena, which the next fetch
	// overwrites — but the follower log retains appended records
	// indefinitely. Give the batch one contiguous arena of its own
	// (headers are already their own copies).
	n := 0
	for i := range batch.Events {
		n += len(batch.Events[i].Key) + len(batch.Events[i].Value)
	}
	arena := make([]byte, 0, n)
	for i := range batch.Events {
		ev := &batch.Events[i]
		if len(ev.Key) > 0 {
			arena = append(arena, ev.Key...)
			ev.Key = arena[len(arena)-len(ev.Key):]
		}
		if len(ev.Value) > 0 {
			arena = append(arena, ev.Value...)
			ev.Value = arena[len(arena)-len(ev.Value):]
		}
	}
	return broker.ReplicaFetchResult{
		Events:        batch.Events,
		LeaderEpoch:   batch.LeaderEpoch,
		HighWatermark: batch.HighWatermark,
		LogStart:      batch.LogStart,
		LogEnd:        batch.LogEnd,
	}, nil
}

func (w wireReplicaClient) ReplicaAck(follower int, topic string, partition int, epoch, leo int64) error {
	return w.c.ReplicaAck(follower, topic, partition, epoch, leo)
}

// replicaCredentials provisions (idempotently) the auth key the
// replication managers dial with. Anonymous clusters skip it.
func (c *Cluster) replicaCredentials() (wire.Options, error) {
	if c.opts.AllowAnonymous {
		return wire.Options{Anonymous: true}, nil
	}
	ident := c.Fabric.Auth.RegisterIdentity(replicationIdentity, "cluster")
	key, err := c.Fabric.Auth.CreateKey(ident.ID)
	if err != nil {
		return wire.Options{}, fmt.Errorf("clusternet: replication credentials: %w", err)
	}
	return wire.Options{AccessKeyID: key.AccessKeyID, Secret: key.Secret}, nil
}

// startManager dials the broker's own listener (the in-process
// loopback a real broker's replication thread would use) and starts
// its follower fetch loops. Callers must have the broker's listener
// bound already.
func (c *Cluster) startManager(id int) error {
	c.mu.Lock()
	bound := c.bound[id]
	running := c.managers[id] != nil
	c.mu.Unlock()
	if running {
		return nil
	}
	if bound == "" {
		return fmt.Errorf("clusternet: broker %d has no bound address", id)
	}
	wopts, err := c.replicaCredentials()
	if err != nil {
		return err
	}
	wc, err := wire.DialOptions(bound, wopts)
	if err != nil {
		return fmt.Errorf("clusternet: broker %d replication dial: %w", id, err)
	}
	m := replication.NewManager(c.Fabric, id, wireReplicaClient{c: wc}, c.opts.ReplicationConfig)
	m.Start()
	c.mu.Lock()
	c.managers[id] = m
	c.mclients[id] = wc
	c.mu.Unlock()
	return nil
}

// stopManager halts a broker's fetch loops and closes their client.
// With kill=true the ordering mimics the process dying: the client's
// connections drop before the loops are reaped.
func (c *Cluster) stopManager(id int, kill bool) {
	c.mu.Lock()
	m := c.managers[id]
	wc := c.mclients[id]
	delete(c.managers, id)
	delete(c.mclients, id)
	c.mu.Unlock()
	if kill && wc != nil {
		wc.Close()
	}
	if m != nil {
		m.Stop()
	}
	if !kill && wc != nil {
		wc.Close()
	}
}

// HardKillBroker is kill -9 for one broker: its listener and every
// connection (serving and replicating) drop on the spot, its
// in-memory state is gone, and only then does the control plane
// notice the death and re-elect leaders. Unlike StopBroker there is
// no graceful handoff — the acked data that survives is whatever
// replication put on other brokers plus what the broker's own DataDir
// segments retained. Bring it back with RecoverBroker.
func (c *Cluster) HardKillBroker(id int) error {
	c.mu.Lock()
	srv := c.servers[id]
	delete(c.servers, id)
	if srv != nil {
		c.retired = append(c.retired, srv)
	}
	c.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	c.stopManager(id, true)
	return c.Fabric.CrashBroker(id)
}

// RecoverBroker brings a hard-killed broker back the durable way: the
// listener rebinds its original address, local segment files replay
// (truncating any torn tail), and the broker re-registers. Its
// replication manager restarts and catches every hosted replica up
// over OpReplicaFetch — truncating to the current leader epoch's log
// where the dead broker had diverged — and the tracker expands it
// back into each ISR as it reaches the leader's log end.
func (c *Cluster) RecoverBroker(id int) error {
	c.mu.Lock()
	bound, ok := c.bound[id]
	running := c.servers[id] != nil
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("clusternet: unknown broker %d", id)
	}
	if running {
		return nil
	}
	// Listener first, recovery second: the instant the controller
	// re-admits the broker (epoch bump), clients may route to it.
	srv := wire.NewBrokerServer(c.Fabric, id)
	srv.AllowAnonymous = c.opts.AllowAnonymous
	if _, err := srv.Listen(bound); err != nil {
		return fmt.Errorf("clusternet: broker %d rebind %s: %w", id, bound, err)
	}
	if err := c.Fabric.RecoverBroker(id); err != nil {
		srv.Close()
		return err
	}
	c.mu.Lock()
	c.servers[id] = srv
	c.mu.Unlock()
	if c.replicated {
		return c.startManager(id)
	}
	return nil
}
