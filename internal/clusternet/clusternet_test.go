package clusternet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/wire"
)

// startCluster brings up an n-broker fabric with per-broker listeners
// and one topic of parts partitions at replication factor rf.
func startCluster(t *testing.T, n int, topic string, parts, rf int) (*Cluster, *broker.Fabric) {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(n, 2, 8); err != nil {
		t.Fatal(err)
	}
	c, err := Serve(f, Options{AllowAnonymous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts, ReplicationFactor: rf}); err != nil {
		t.Fatal(err)
	}
	return c, f
}

// dialSeed connects a leader-direct client through one broker's
// advertised address.
func dialSeed(t *testing.T, c *Cluster, id int) *wire.Client {
	t.Helper()
	wc, err := wire.DialOptions(c.Addr(id), wire.Options{Anonymous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wc.Close() })
	if !wc.RouterEnabled() {
		t.Fatal("cluster metadata routing not enabled on a current pairing")
	}
	return wc
}

// TestLeaderDirectSteadyState drives the full SDK pipeline — keyed and
// unkeyed batched produce, grouped streaming consume, offset queries —
// against a 3-broker cluster and asserts not one data-plane request
// missed its partition leader: the acceptance bar for leader-direct
// routing is a misroute counter pinned at zero.
func TestLeaderDirectSteadyState(t *testing.T) {
	cl, _ := startCluster(t, 3, "steady", 6, 2)
	wc := dialSeed(t, cl, 0)

	const total = 600
	p := client.NewProducer(wc, "steady", client.ProducerConfig{BatchEvents: 32, Linger: time.Millisecond})
	for i := 0; i < total; i++ {
		key := ""
		if i%2 == 0 {
			key = fmt.Sprintf("k%d", i%13) // half keyed, half round-robin
		}
		if err := p.Send(event.Event{Key: []byte(key), Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = p.Close()

	cons := client.NewConsumer(wc, client.ConsumerConfig{
		Group: "g", Start: client.StartEarliest, AutoCommit: true, Prefetch: true,
	})
	defer cons.Close()
	if err := cons.Subscribe("steady"); err != nil {
		t.Fatal(err)
	}
	got := 0
	deadline := time.Now().Add(15 * time.Second)
	for got < total && time.Now().Before(deadline) {
		evs, err := cons.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		got += len(evs)
	}
	if got != total {
		t.Fatalf("consumed %d of %d", got, total)
	}
	for pt := 0; pt < 6; pt++ {
		if _, err := wc.EndOffset("steady", pt); err != nil {
			t.Fatal(err)
		}
	}
	if n := cl.Misroutes(); n != 0 {
		t.Fatalf("steady-state misroutes = %d, want 0", n)
	}
}

// TestFailoverMidProduce kills a partition leader while producers are
// mid-flight and asserts zero acked-event loss: every produce the
// client saw succeed is readable from the re-elected leader, and the
// surviving cluster serves the remainder of the workload.
func TestFailoverMidProduce(t *testing.T) {
	cl, f := startCluster(t, 3, "fp", 3, 2)
	wc := dialSeed(t, cl, 0)

	// Find partition 0's leader so the kill provably hits an active
	// produce target.
	leader, err := f.PartitionLeader("fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Seed through a different broker, so the seed survives the kill.
	seedID := (leader + 1) % 3
	wc.Close()
	wc = dialSeed(t, cl, seedID)

	var (
		mu    sync.Mutex
		acked []string
	)
	produce := func(i int) error {
		val := fmt.Sprintf("v%d", i)
		_, err := wc.Produce("", "fp", 0, []event.Event{{Value: []byte(val)}}, broker.AcksLeader)
		if err == nil {
			mu.Lock()
			acked = append(acked, val)
			mu.Unlock()
		}
		return err
	}
	const total = 200
	for i := 0; i < total; i++ {
		if i == total/2 {
			if err := cl.StopBroker(leader); err != nil {
				t.Fatal(err)
			}
		}
		if err := produce(i); err != nil {
			// A produce that raced the kill may fail; it is not acked, so
			// losing it is allowed — but the client must recover by the
			// next call (metadata refresh + reroute), so more than a
			// couple of failures means rerouting is broken.
			if !errors.Is(err, wire.ErrNotLeader) {
				t.Fatalf("produce %d failed with non-failover error: %v", i, err)
			}
		}
	}
	mu.Lock()
	ackedCount := len(acked)
	mu.Unlock()
	if ackedCount < total-3 {
		t.Fatalf("only %d of %d produces acked: reroute did not recover", ackedCount, total)
	}

	// Every acked event must be present on the new leader.
	end, err := wc.EndOffset("fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	var buf broker.FetchBuffer
	for off := int64(0); off < end; {
		res, err := wc.FetchBuffered("", "fp", 0, off, 500, 1<<20, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) == 0 {
			t.Fatalf("empty fetch at %d below end %d", off, end)
		}
		for _, ev := range res.Events {
			seen[string(ev.Value)] = true
			off = ev.Offset + 1
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, val := range acked {
		if !seen[val] {
			t.Fatalf("acked event %q lost after leader failover", val)
		}
	}
}

// TestFailoverMidStream kills the leader under an active streaming
// consumer and asserts the stream transparently reopens against the
// re-elected leader with no gap and no duplicate: the consumer's
// offsets stay contiguous through the failover, and everything
// produced — before and after the kill — is delivered.
func TestFailoverMidStream(t *testing.T) {
	cl, f := startCluster(t, 3, "fs", 1, 2)
	leader, err := f.PartitionLeader("fs", 0)
	if err != nil {
		t.Fatal(err)
	}
	seedID := (leader + 1) % 3
	wc := dialSeed(t, cl, seedID)
	if wc.Features()&wire.FeatStreamFetch == 0 {
		t.Fatal("streaming not negotiated")
	}

	const before, after = 1000, 500
	evs := make([]event.Event, 100)
	mk := func(base int) {
		for i := range evs {
			evs[i] = event.Event{Value: []byte(fmt.Sprintf("v%d", base+i))}
		}
	}
	for n := 0; n < before; n += len(evs) {
		mk(n)
		if _, err := wc.Produce("", "fs", 0, evs, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
	}

	cons := client.NewConsumer(wc, client.ConsumerConfig{
		Start: client.StartEarliest, Prefetch: true,
		MaxPollEvents: 100, PollWait: 50 * time.Millisecond,
	})
	defer cons.Close()
	if err := cons.Assign("fs", 0); err != nil {
		t.Fatal(err)
	}

	var off int64
	poll := func(deadlineAt time.Time, want int64) {
		for off < want && time.Now().Before(deadlineAt) {
			polled, err := cons.Poll(100)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range polled {
				if ev.Offset != off {
					t.Fatalf("offset %d after %d: stream reroute broke contiguity", ev.Offset, off)
				}
				if want := fmt.Sprintf("v%d", off); string(ev.Value) != want {
					t.Fatalf("event %d value %q, want %q", off, ev.Value, want)
				}
				off++
			}
		}
	}

	// Drain half the backlog through the stream, then kill the leader.
	poll(time.Now().Add(10*time.Second), before/2)
	if off < before/2 {
		t.Fatalf("pre-failover consumption stalled at %d", off)
	}
	if err := cl.StopBroker(leader); err != nil {
		t.Fatal(err)
	}

	// The rest of the backlog (replicated before the kill) plus fresh
	// produces against the new leader must all arrive, contiguously.
	for n := before; n < before+after; n += len(evs) {
		mk(n)
		if _, err := wc.Produce("", "fs", 0, evs, broker.AcksLeader); err != nil {
			t.Fatalf("produce after failover: %v", err)
		}
	}
	poll(time.Now().Add(15*time.Second), before+after)
	if off != before+after {
		t.Fatalf("consumed %d of %d through the failover", off, before+after)
	}
}

// TestRestartRejoins stops a broker, runs traffic without it, restarts
// it, and asserts it catches up and serves again: a full produce/fetch
// cycle lands on it once it re-wins leadership of a leaderless
// partition, and the cluster's advertised metadata reflects every
// transition.
func TestRestartRejoins(t *testing.T) {
	cl, f := startCluster(t, 3, "rr", 3, 2)
	wc := dialSeed(t, cl, 0)

	if _, err := wc.Produce("", "rr", 0, []event.Event{{Value: []byte("a")}}, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
	victim, err := f.PartitionLeader("rr", 0)
	if err != nil {
		t.Fatal(err)
	}
	if victim == 0 {
		wc.Close()
		wc = dialSeed(t, cl, 1)
	}
	if err := cl.StopBroker(victim); err != nil {
		t.Fatal(err)
	}
	meta, err := wc.ClusterMetadata()
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range meta.Brokers {
		if br.ID == victim && br.Up {
			t.Fatalf("metadata lists stopped broker %d as up", victim)
		}
	}
	if _, err := wc.Produce("", "rr", 0, []event.Event{{Value: []byte("b")}}, broker.AcksLeader); err != nil {
		t.Fatalf("produce after failover: %v", err)
	}

	if err := cl.RestartBroker(victim); err != nil {
		t.Fatal(err)
	}
	meta, err = wc.ClusterMetadata()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, br := range meta.Brokers {
		if br.ID == victim {
			found = true
			if !br.Up {
				t.Fatalf("metadata lists restarted broker %d as down", victim)
			}
			if br.Addr != cl.Addr(victim) {
				t.Fatalf("restarted broker advertises %q, cluster says %q", br.Addr, cl.Addr(victim))
			}
		}
	}
	if !found {
		t.Fatalf("restarted broker %d missing from metadata", victim)
	}
	// The restarted replica caught up: both produced events are on it.
	n, ok := f.Node(victim)
	if !ok {
		t.Fatalf("unknown broker %d", victim)
	}
	log, ok := n.ReplicaLog(broker.TP{Topic: "rr", Partition: 0})
	if !ok {
		t.Fatal("restarted broker lost its replica log")
	}
	if end := log.EndOffset(); end != 2 {
		t.Fatalf("restarted replica end offset %d, want 2", end)
	}
}

// drainSuite drives the pushed-metadata acceptance scenario: a client
// with open fetch sessions on every broker, a graceful leadership drain
// of one of them, and a full produce/consume pass afterwards. It
// returns the misroute delta that pass produced and the number of
// fetch/produce round trips that failed.
func drainSuite(t *testing.T, push bool) (misroutes int64, failed int) {
	t.Helper()
	const parts, perPart = 4, 50
	cl, f := startCluster(t, 3, "dr", parts, 2)
	wc, err := wire.DialOptions(cl.Addr(0), wire.Options{
		Anonymous: true, PoolSize: 1, DisableMetaPush: !push,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if got := wc.Features()&wire.FeatMetaPush != 0; got != push {
		t.Fatalf("metadata push negotiated = %v, want %v", got, push)
	}

	// Open a live fetch session against every partition leader.
	for p := 0; p < parts; p++ {
		evs := make([]event.Event, perPart)
		for i := range evs {
			evs[i] = event.Event{Value: []byte(fmt.Sprintf("p%d-%d", p, i))}
		}
		if _, err := wc.Produce("", "dr", p, evs, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
	}
	offs := make([]int64, parts)
	var buf broker.FetchBuffer
	consume := func(want int64, tolerateMisroute bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			done := true
			for p := 0; p < parts; p++ {
				if offs[p] >= want {
					continue
				}
				done = false
				res, err := wc.FetchBuffered("", "dr", p, offs[p], 100, 1<<20, &buf)
				if err != nil {
					failed++
					if tolerateMisroute && errors.Is(err, wire.ErrNotLeader) {
						continue // reactive re-route recovers on the next call
					}
					t.Fatalf("fetch p%d@%d: %v", p, offs[p], err)
				}
				for _, ev := range res.Events {
					if ev.Offset != offs[p] {
						t.Fatalf("p%d offset %d, want %d", p, ev.Offset, offs[p])
					}
					offs[p]++
				}
			}
			if done {
				return
			}
		}
		t.Fatalf("consumption stalled at %v, want %d per partition", offs, want)
	}
	consume(perPart, false)
	if n := cl.Misroutes(); n != 0 {
		t.Fatalf("pre-drain misroutes = %d", n)
	}

	// Gracefully drain partition 0's leader: leadership moves, epoch
	// bumps, but the broker (and the client's sessions on it) stay up.
	leader, err := f.PartitionLeader("dr", 0)
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := wc.MetadataEpoch()
	if err := cl.DrainBroker(leader); err != nil {
		t.Fatal(err)
	}
	if newLeader, err := f.PartitionLeader("dr", 0); err != nil || newLeader == leader {
		t.Fatalf("leadership did not move off broker %d (now %d, %v)", leader, newLeader, err)
	}
	if push {
		// The pushed document must land with no data-plane traffic at
		// all: the broker offers it, the client adopts it.
		deadline := time.Now().Add(5 * time.Second)
		for wc.MetadataEpoch() <= epoch0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if wc.MetadataEpoch() <= epoch0 {
			t.Fatal("pushed metadata never adopted after drain")
		}
	}

	// Full post-drain pass: produce into and consume from every
	// partition, including the moved one.
	before := cl.Misroutes()
	for p := 0; p < parts; p++ {
		for i := 0; i < 10; i++ {
			val := fmt.Sprintf("p%d-%d", p, perPart+i)
			if _, err := wc.Produce("", "dr", p, []event.Event{{Value: []byte(val)}}, broker.AcksLeader); err != nil {
				failed++
				if push || !errors.Is(err, wire.ErrNotLeader) {
					t.Fatalf("produce %s after drain: %v", val, err)
				}
				i-- // reactive client retries the same value
			}
		}
	}
	consume(perPart+10, !push)
	return cl.Misroutes() - before, failed
}

// TestDrainWithMetadataPush is the acceptance gate for pushed metadata:
// a leadership drain with FeatMetaPush negotiated produces ZERO failed
// round trips and ZERO misroutes on a client with open sessions — the
// push re-routes it before any request can miss.
func TestDrainWithMetadataPush(t *testing.T) {
	misroutes, failed := drainSuite(t, true)
	if failed != 0 {
		t.Fatalf("%d round trips failed through a pushed-metadata drain, want 0", failed)
	}
	if misroutes != 0 {
		t.Fatalf("%d misroutes through a pushed-metadata drain, want 0", misroutes)
	}
}

// TestDrainWithoutMetadataPush pins the fallback: with push masked, the
// same drain is only discovered reactively — the drained broker refuses
// misrouted requests and the client re-fetches metadata, exactly the
// pre-push behavior.
func TestDrainWithoutMetadataPush(t *testing.T) {
	misroutes, _ := drainSuite(t, false)
	if misroutes == 0 {
		t.Fatal("reactive drain produced no misroutes: push-off fallback is not exercising reactive rerouting")
	}
}
