package clusternet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/replication"
	"repro/internal/wire"
)

// startReplicated brings up an n-broker cluster with wire-backed
// replication, DataDir-backed replica logs, and one topic.
func startReplicated(t *testing.T, n int, topic string, parts, rf, minISR int, cfg replication.Config) (*Cluster, *broker.Fabric) {
	t.Helper()
	f := broker.NewFabric(nil)
	f.MinInsyncReplicas = minISR
	for i := 0; i < n; i++ {
		if _, err := f.AddBroker(cluster.BrokerInfo{ID: i, VCPUs: 2, MemGB: 8, DataDir: t.TempDir()}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Serve(f, Options{AllowAnonymous: true, Replication: true, ReplicationConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts, ReplicationFactor: rf}); err != nil {
		t.Fatal(err)
	}
	return c, f
}

func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func isrSize(t *testing.T, f *broker.Fabric, topic string, p int) int {
	t.Helper()
	meta, err := f.Ctl.Topic(topic)
	if err != nil {
		t.Fatal(err)
	}
	return len(meta.Partitions[p].ISR)
}

// TestReplicatedSteadyState: with replication enabled, acks=all
// produces over the wire commit through real follower fetches, the
// ISR stays full, and consumers read everything back.
func TestReplicatedSteadyState(t *testing.T) {
	cl, f := startReplicated(t, 3, "rs", 1, 3, 2, replication.Config{})
	wc := dialSeed(t, cl, 0)
	if wc.Features()&wire.FeatReplication == 0 {
		t.Fatal("replication feature not negotiated")
	}

	const total = 300
	evs := make([]event.Event, 50)
	for n := 0; n < total; n += len(evs) {
		for i := range evs {
			evs[i] = event.Event{Value: []byte(fmt.Sprintf("v%d", n+i))}
		}
		if _, err := wc.Produce("", "rs", 0, evs, broker.AcksAll); err != nil {
			t.Fatalf("acks=all produce at %d: %v", n, err)
		}
	}
	if got := isrSize(t, f, "rs", 0); got != 3 {
		t.Fatalf("ISR size %d after healthy acks=all run; want 3", got)
	}
	st, ok := f.ReplicaStatusFor("rs", 0)
	if !ok || st.HighWatermark != total {
		t.Fatalf("replica status = %+v, %v; want hw %d", st, ok, total)
	}
	res, err := wc.Fetch("", "rs", 0, 0, total, 0)
	if err != nil || len(res.Events) == 0 {
		t.Fatalf("fetch: %d events, %v", len(res.Events), err)
	}
	// The metadata document's trailing replication section reports the
	// same state any client (octopus-cli isr) observes.
	md, err := wc.ClusterMetadata("rs")
	if err != nil {
		t.Fatalf("metadata: %v", err)
	}
	if md.Replication == nil || len(md.Replication.Topics) != 1 {
		t.Fatalf("metadata replication section = %+v", md.Replication)
	}
	rp := md.Replication.Topics[0].Partitions[0]
	if md.Replication.Topics[0].Name != "rs" || rp.ID != 0 || rp.HighWatermark != total || rp.LogEnd != total {
		t.Fatalf("replication section partition = %+v", rp)
	}
	if len(rp.Followers) != 2 {
		t.Fatalf("replication section followers = %+v", rp.Followers)
	}
	// Every replica converged on the same log.
	meta, _ := f.Ctl.Topic("rs")
	for _, id := range meta.Partitions[0].Replicas {
		log, err := f.BrokerLog(id, "rs", 0)
		if err != nil {
			t.Fatal(err)
		}
		waitCond(t, fmt.Sprintf("broker %d catch-up", id), 5*time.Second, func() bool {
			return log.EndOffset() == total
		})
	}
}

// TestDurableRecoveryFailover is the PR's acceptance test: a 3-broker
// RF-3 cluster with min.insync.replicas=2 sustains a kill -9 of the
// partition leader mid-produce with zero acked-event loss, and the
// killed broker recovers durably — replaying its on-disk segments,
// catching up over replication fetches, and rejoining the ISR.
func TestDurableRecoveryFailover(t *testing.T) {
	cl, f := startReplicated(t, 3, "dr", 1, 3, 2, replication.Config{CommitTimeout: 5 * time.Second})
	leader, err := f.PartitionLeader("dr", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Seed through a broker that survives the kill.
	wc := dialSeed(t, cl, (leader+1)%3)

	var acked []string
	produce := func(i int) {
		val := fmt.Sprintf("v%d", i)
		_, err := wc.Produce("", "dr", 0, []event.Event{{Value: []byte(val)}}, broker.AcksAll)
		if err == nil {
			acked = append(acked, val)
		}
	}
	const total = 120
	for i := 0; i < total; i++ {
		if i == total/2 {
			if err := cl.HardKillBroker(leader); err != nil {
				t.Fatal(err)
			}
		}
		produce(i)
	}
	if len(acked) < total-5 {
		t.Fatalf("only %d of %d produces acked: failover did not recover", len(acked), total)
	}

	// Zero acked loss: every acked value is on the new leader.
	newLeader, err := f.PartitionLeader("dr", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newLeader == leader {
		t.Fatalf("leader %d still leads after kill", leader)
	}
	readValues := func(log interface {
		EndOffset() int64
		Read(int64, int) ([]event.Event, error)
	}) map[string]bool {
		seen := make(map[string]bool)
		evs, err := log.Read(0, int(log.EndOffset()))
		if err != nil {
			t.Fatalf("read replica log: %v", err)
		}
		for _, ev := range evs {
			seen[string(ev.Value)] = true
		}
		return seen
	}
	leaderLog, err := f.BrokerLog(newLeader, "dr", 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := readValues(leaderLog)
	for _, val := range acked {
		if !seen[val] {
			t.Fatalf("acked event %q lost after leader kill -9", val)
		}
	}

	// Durable recovery: the killed broker comes back from its segment
	// files, catches up over OpReplicaFetch, and rejoins the ISR.
	if err := cl.RecoverBroker(leader); err != nil {
		t.Fatalf("RecoverBroker: %v", err)
	}
	waitCond(t, "killed broker rejoining ISR", 10*time.Second, func() bool {
		return isrSize(t, f, "dr", 0) == 3
	})
	recLog, err := f.BrokerLog(leader, "dr", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "recovered broker catch-up", 10*time.Second, func() bool {
		return recLog.EndOffset() == leaderLog.EndOffset()
	})
	recSeen := readValues(recLog)
	for _, val := range acked {
		if !recSeen[val] {
			t.Fatalf("acked event %q missing from recovered broker", val)
		}
	}

	// And the cluster is healthy end to end: acks=all commits through
	// all three replicas again, including the recovered one.
	if _, err := wc.Produce("", "dr", 0, []event.Event{{Value: []byte("post-recovery")}}, broker.AcksAll); err != nil {
		t.Fatalf("acks=all after recovery: %v", err)
	}
	waitCond(t, "recovered broker replicating new records", 5*time.Second, func() bool {
		return recLog.EndOffset() == leaderLog.EndOffset()
	})
}

// TestReplicationFeatureMaskedFallsBackToSingleReplica: when every
// follower's replication client masks FeatReplication (the stand-in
// for a rolling fleet of legacy brokers), leaders refuse their fetches
// as unknown ops, no follower ever acks, and the first acks=all
// produce shrinks the ISR down to the leader — after which the cluster
// serves exactly like the pre-replication single-replica fabric.
func TestReplicationFeatureMaskedFallsBackToSingleReplica(t *testing.T) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(3, 2, 8); err != nil {
		t.Fatal(err)
	}
	cl, err := Serve(f, Options{AllowAnonymous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if _, err := f.CreateTopic("lm", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		t.Fatal(err)
	}
	cfg := replication.Config{CommitTimeout: 100 * time.Millisecond}
	tr := replication.NewTracker(f, cfg)
	f.SetReplicator(tr)
	t.Cleanup(func() { f.SetReplicator(nil) })
	for _, id := range f.NodeIDs() {
		mc, err := wire.DialOptions(cl.Addr(id), wire.Options{Anonymous: true, DisableReplication: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mc.Close() })
		m := replication.NewManager(f, id, wireReplicaClient{c: mc}, cfg)
		m.Start()
		t.Cleanup(m.Stop)
	}

	wc := dialSeed(t, cl, 0)
	// The first acks=all waits out CommitTimeout, evicts the silent
	// followers, and commits against the leader alone.
	if _, err := wc.Produce("", "lm", 0, []event.Event{{Value: []byte("x")}}, broker.AcksAll); err != nil {
		t.Fatalf("acks=all with masked replication: %v", err)
	}
	if got := isrSize(t, f, "lm", 0); got != 1 {
		t.Fatalf("ISR size %d after fallback; want 1 (leader only)", got)
	}
	// Steady single-replica operation from here on.
	if _, err := wc.Produce("", "lm", 0, []event.Event{{Value: []byte("y")}}, broker.AcksAll); err != nil {
		t.Fatalf("acks=all after fallback: %v", err)
	}
	res, err := wc.Fetch("", "lm", 0, 0, 10, 0)
	if err != nil || len(res.Events) != 2 {
		t.Fatalf("fetch after fallback: %d events, %v", len(res.Events), err)
	}
}

// TestNoLeaderBoundedRetry: killing every replica of a partition
// leaves it leaderless; a client produce fails with the typed
// wire.ErrNoLeader after a bounded retry/backoff (not a hang, not a
// silent reroute loop), while other partitions keep serving.
func TestNoLeaderBoundedRetry(t *testing.T) {
	cl, f := startCluster(t, 3, "nl", 3, 1)
	// RF=1: each partition has exactly one replica. Killing partition
	// 0's only broker kills all its replicas.
	victim, err := f.PartitionLeader("nl", 0)
	if err != nil {
		t.Fatal(err)
	}
	wc := dialSeed(t, cl, (victim+1)%3)
	if err := cl.StopBroker(victim); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = wc.Produce("", "nl", 0, []event.Event{{Value: []byte("x")}}, broker.AcksLeader)
	elapsed := time.Since(start)
	if !errors.Is(err, wire.ErrNoLeader) {
		t.Fatalf("produce to leaderless partition: %v; want ErrNoLeader", err)
	}
	// The bounded backoff (4 retries, 25ms doubling) must actually
	// have run — and must stay bounded.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("ErrNoLeader after %v: retry/backoff did not run", elapsed)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("ErrNoLeader after %v: backoff not bounded", elapsed)
	}
	// A partition whose replica survived keeps working.
	for p := 1; p < 3; p++ {
		if leader, _ := f.PartitionLeader("nl", p); leader >= 0 {
			if _, err := wc.Produce("", "nl", p, []event.Event{{Value: []byte("y")}}, broker.AcksLeader); err != nil {
				t.Fatalf("surviving partition %d: %v", p, err)
			}
			return
		}
	}
	t.Fatal("no surviving partition found")
}
