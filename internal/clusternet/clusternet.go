// Package clusternet is the cluster serving subsystem: it exposes a
// fabric as the paper's cluster of brokers (§IV), each with its own
// wire listener restricted to the partitions it leads, instead of one
// listener fronting everything.
//
// Serve binds one wire.Server per broker node to the broker's
// configured (or an ephemeral) address, publishes the bound address as
// the broker's advertised address in the controller registry — which
// bumps the metadata epoch, so OpMetadata responses immediately route
// clients there — and scopes each server to its broker
// (wire.Server.LocalBroker): a data-plane request for a partition the
// broker does not lead is refused with ErrNotLeader carrying the
// current leader's id, never silently served from shared in-process
// state.
//
// Failure injection mirrors the fabric's: StopBroker re-elects leaders
// through the controller and then tears the broker's listener down, so
// connected clients observe the connection failure only after fresh
// metadata already names the new leaders — one metadata round trip
// re-routes them. RestartBroker rebinds the same address, catches
// replicas up, and rejoins ISRs.
package clusternet

import (
	"fmt"
	"sync"

	"repro/internal/broker"
	"repro/internal/replication"
	"repro/internal/wire"
)

// Options configures a cluster's listeners.
type Options struct {
	// AllowAnonymous lets connections skip OpAuth (tests, single-user
	// deployments).
	AllowAnonymous bool
	// Addrs maps broker id to its listen address; brokers absent from
	// the map bind an ephemeral 127.0.0.1 port.
	Addrs map[int]string
	// Advertise, when set, rewrites a broker's bound address before it
	// is registered as the advertised address — how benchmarks place an
	// emulated WAN link (testbed.DelayProxy) in front of every broker
	// while the listeners stay on loopback.
	Advertise func(brokerID int, bound string) (string, error)
	// Replication attaches the inter-broker replication subsystem: a
	// fabric-wide tracker (ISR membership, high watermarks, acks=all
	// gating) plus one manager per broker whose fetch loops pull from
	// partition leaders over wire-v2 OpReplicaFetch. Without it the
	// fabric keeps its single-process synchronous replication.
	Replication bool
	// ReplicationConfig tunes the subsystem (zero value = defaults).
	ReplicationConfig replication.Config
}

// Cluster is a set of per-broker wire servers over one fabric.
type Cluster struct {
	Fabric *broker.Fabric
	opts   Options

	mu      sync.Mutex
	servers map[int]*wire.Server
	// bound is each broker's listen address, kept so RestartBroker can
	// rebind the exact address its advertised identity points at.
	bound map[int]string
	// advertised is each broker's registered address.
	advertised map[int]string
	// retired holds servers taken out of service so Misroutes stays
	// monotonic across stop/restart cycles: a server moves from
	// servers to retired under one lock, so no counter is ever
	// momentarily in neither.
	retired []*wire.Server

	// Replication subsystem state (Options.Replication).
	replicated bool
	tracker    *replication.Tracker
	managers   map[int]*replication.Manager
	mclients   map[int]*wire.Client
}

// Tracker returns the attached replication tracker, nil when the
// cluster serves without Options.Replication.
func (c *Cluster) Tracker() *replication.Tracker { return c.tracker }

// Serve starts one scoped wire server per broker node of the fabric
// and publishes each bound address as the broker's advertised address.
func Serve(f *broker.Fabric, opts Options) (*Cluster, error) {
	c := &Cluster{
		Fabric:     f,
		opts:       opts,
		servers:    make(map[int]*wire.Server),
		bound:      make(map[int]string),
		advertised: make(map[int]string),
		managers:   make(map[int]*replication.Manager),
		mclients:   make(map[int]*wire.Client),
	}
	if opts.Replication {
		c.replicated = true
		c.tracker = replication.NewTracker(f, opts.ReplicationConfig)
		f.SetReplicator(c.tracker)
	}
	for _, id := range f.NodeIDs() {
		addr := opts.Addrs[id]
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		if err := c.startBroker(id, addr); err != nil {
			c.Close()
			return nil, err
		}
	}
	if c.replicated {
		// Managers start after every listener is up: a fetch loop's
		// first metadata round trip must already see each leader's
		// advertised address.
		for _, id := range f.NodeIDs() {
			if err := c.startManager(id); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	return c, nil
}

// startBroker binds and registers one broker's listener.
func (c *Cluster) startBroker(id int, addr string) error {
	srv := wire.NewBrokerServer(c.Fabric, id)
	srv.AllowAnonymous = c.opts.AllowAnonymous
	bound, err := srv.Listen(addr)
	if err != nil {
		return fmt.Errorf("clusternet: broker %d listen %s: %w", id, addr, err)
	}
	adv := bound
	if c.opts.Advertise != nil {
		if adv, err = c.opts.Advertise(id, bound); err != nil {
			srv.Close()
			return fmt.Errorf("clusternet: broker %d advertise: %w", id, err)
		}
	}
	n, ok := c.Fabric.Node(id)
	if !ok {
		srv.Close()
		return fmt.Errorf("clusternet: unknown broker %d", id)
	}
	n.SetAddr(adv)
	if err := c.Fabric.Ctl.SetBrokerAddr(id, adv); err != nil {
		srv.Close()
		return err
	}
	c.mu.Lock()
	c.servers[id] = srv
	c.bound[id] = bound
	c.advertised[id] = adv
	c.mu.Unlock()
	return nil
}

// Server returns a broker's running wire server, nil when the broker
// is stopped or unknown — how a metrics endpoint reaches each
// listener's registry without racing stop/restart cycles.
func (c *Cluster) Server(id int) *wire.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[id]
}

// Addr returns a broker's advertised address ("" for unknown ids) —
// any of them works as a client seed.
func (c *Cluster) Addr(id int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advertised[id]
}

// Addrs returns every broker's advertised address, ordered by broker
// id.
func (c *Cluster) Addrs() []string {
	var addrs []string
	for _, id := range c.Fabric.NodeIDs() {
		if a := c.Addr(id); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// Misroutes sums every broker server's misroute count (data-plane
// requests refused with ErrNotLeader), including servers since
// stopped. A leader-direct client fleet holds it at zero in steady
// state.
func (c *Cluster) Misroutes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, srv := range c.retired {
		total += srv.Misroutes()
	}
	for _, srv := range c.servers {
		total += srv.Misroutes()
	}
	return total
}

// StopBroker fails one broker: the controller re-elects leaders for
// everything it led (bumping the metadata epoch), then its listener
// and connections are torn down — in that order, so by the time a
// client sees its connection die, a metadata fetch already routes
// around the dead broker.
func (c *Cluster) StopBroker(id int) error {
	if err := c.Fabric.StopBroker(id); err != nil {
		return err
	}
	c.mu.Lock()
	srv := c.servers[id]
	delete(c.servers, id)
	if srv != nil {
		c.retired = append(c.retired, srv)
	}
	c.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	c.stopManager(id, false)
	return nil
}

// DrainBroker gracefully retires a broker from leadership without
// killing it: the controller re-elects leaders for everything it led
// (first surviving ISR member) and bumps the metadata epoch, while the
// broker's listener, connections, and replica logs all stay up. This is
// the planned-maintenance half of failure injection — with metadata
// push negotiated, clients re-route on the pushed epoch before any
// request fails; without it, the drained broker answers misrouted
// data-plane requests with ErrNotLeader until clients reactively
// re-fetch metadata.
func (c *Cluster) DrainBroker(id int) error {
	if _, ok := c.Fabric.Node(id); !ok {
		return fmt.Errorf("clusternet: unknown broker %d", id)
	}
	c.Fabric.Ctl.HandleBrokerFailure(id)
	return nil
}

// RestartBroker brings a stopped broker back: the listener rebinds the
// broker's original address, replicas catch up from current leaders,
// and the broker re-registers and rejoins ISRs (bumping the epoch, so
// clients re-learn it).
func (c *Cluster) RestartBroker(id int) error {
	c.mu.Lock()
	bound, ok := c.bound[id]
	running := c.servers[id] != nil
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("clusternet: unknown broker %d", id)
	}
	if running {
		return nil
	}
	// Listener first, recovery second: the instant the controller
	// re-admits the broker (epoch bump), clients may route to it, so
	// its address must already answer.
	srv := wire.NewBrokerServer(c.Fabric, id)
	srv.AllowAnonymous = c.opts.AllowAnonymous
	if _, err := srv.Listen(bound); err != nil {
		return fmt.Errorf("clusternet: broker %d rebind %s: %w", id, bound, err)
	}
	if err := c.Fabric.RestartBroker(id); err != nil {
		srv.Close()
		return err
	}
	c.mu.Lock()
	c.servers[id] = srv
	c.mu.Unlock()
	if c.replicated {
		return c.startManager(id)
	}
	return nil
}

// Close tears every broker listener down. Misroute counts survive
// (closed servers retire, not vanish), so a post-Close Misroutes probe
// still reports the full run.
func (c *Cluster) Close() {
	c.mu.Lock()
	ids := make([]int, 0, len(c.managers))
	for id := range c.managers {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		c.stopManager(id, false)
	}
	c.mu.Lock()
	servers := c.servers
	c.servers = make(map[int]*wire.Server)
	for _, srv := range servers {
		c.retired = append(c.retired, srv)
	}
	c.mu.Unlock()
	for _, srv := range servers {
		srv.Close()
	}
	if c.replicated {
		c.Fabric.SetReplicator(nil)
	}
}
