package model

import (
	"math"
	"testing"

	"repro/internal/broker"
)

func wl(size int, acks broker.Acks, parts, rf int, loc Locality) Workload {
	return Workload{EventSize: size, Acks: acks, Partitions: parts, ReplicationFactor: rf, Locality: loc}
}

// closeTo checks |got-want|/want <= tol.
func closeTo(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if math.Abs(got-want)/want > tol {
		t.Errorf("%s = %.0f, want %.0f (±%.0f%%)", name, got, want, tol*100)
	}
}

// TestTable3Anchors verifies the model reproduces the paper's anchor
// cells within 5 %.
func TestTable3Anchors(t *testing.T) {
	cases := []struct {
		name    string
		cluster ClusterSpec
		w       Workload
		prod    float64
		cons    float64
	}{
		{"exp1-local", Baseline, wl(32, broker.AcksNone, 2, 2, Local), 4.289e6, 9.84e6},
		{"exp1-remote", Baseline, wl(32, broker.AcksNone, 2, 2, Remote), 4.202e6, 9.646e6},
		{"exp2-local", Baseline, wl(1024, broker.AcksNone, 2, 2, Local), 195e3, 356e3},
		{"exp2-remote", Baseline, wl(1024, broker.AcksNone, 2, 2, Remote), 174e3, 367e3},
		{"exp3-local", Baseline, wl(1024, broker.AcksLeader, 2, 2, Local), 161e3, 356e3},
		{"exp3-remote", Baseline, wl(1024, broker.AcksLeader, 2, 2, Remote), 143e3, 367e3},
		{"exp4-local", Baseline, wl(1024, broker.AcksAll, 2, 2, Local), 65e3, 356e3},
		{"exp5-local", Baseline, wl(4096, broker.AcksNone, 2, 2, Local), 43e3, 91e3},
		{"exp5-remote", Baseline, wl(4096, broker.AcksNone, 2, 2, Remote), 39e3, 94e3},
		{"exp6-local", Baseline, wl(1024, broker.AcksNone, 4, 2, Local), 202e3, 374e3},
		{"exp8-local", ScaleOut, wl(1024, broker.AcksNone, 4, 2, Local), 319e3, 785e3},
		{"exp8-remote", ScaleOut, wl(1024, broker.AcksNone, 4, 2, Remote), 303e3, 813e3},
		{"exp9-local", ScaleOut, wl(1024, broker.AcksNone, 4, 4, Local), 246e3, 777e3},
	}
	for _, c := range cases {
		closeTo(t, c.name+"/prod", ProducerThroughput(c.cluster, c.w), c.prod, 0.05)
		closeTo(t, c.name+"/cons", ConsumerThroughput(c.cluster, c.w), c.cons, 0.06)
	}
}

// TestScaleUpRow checks experiment 7 within a looser band (the
// remote-damping term is approximate).
func TestScaleUpRow(t *testing.T) {
	closeTo(t, "exp7-local/prod", ProducerThroughput(ScaleUp, wl(1024, broker.AcksNone, 4, 2, Local)), 238e3, 0.08)
	closeTo(t, "exp7-remote/prod", ProducerThroughput(ScaleUp, wl(1024, broker.AcksNone, 4, 2, Remote)), 184e3, 0.08)
	closeTo(t, "exp7-local/cons", ConsumerThroughput(ScaleUp, wl(1024, broker.AcksNone, 4, 2, Local)), 751e3, 0.08)
}

// TestShapeInvariants verifies the orderings the paper reports, which
// are the reproduction targets (DESIGN.md "shape targets").
func TestShapeInvariants(t *testing.T) {
	base := wl(1024, broker.AcksNone, 2, 2, Local)
	// acks=0 > acks=1 > acks=all.
	p0 := ProducerThroughput(Baseline, base)
	p1 := ProducerThroughput(Baseline, wl(1024, broker.AcksLeader, 2, 2, Local))
	pa := ProducerThroughput(Baseline, wl(1024, broker.AcksAll, 2, 2, Local))
	if !(p0 > p1 && p1 > pa) {
		t.Errorf("acks ordering broken: %f %f %f", p0, p1, pa)
	}
	// Read roughly 2x write.
	ratio := ConsumerThroughput(Baseline, base) / p0
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("read/write ratio = %.2f, want ~2", ratio)
	}
	// Bigger events, fewer events/s.
	if ProducerThroughput(Baseline, wl(32, broker.AcksNone, 2, 2, Local)) <= p0 {
		t.Error("32 B should beat 1 KB in events/s")
	}
	if ProducerThroughput(Baseline, wl(4096, broker.AcksNone, 2, 2, Local)) >= p0 {
		t.Error("4 KB should trail 1 KB in events/s")
	}
	// Scale-out beats scale-up at the same total vCPUs.
	w4 := wl(1024, broker.AcksNone, 4, 2, Local)
	if ProducerThroughput(ScaleOut, w4) <= ProducerThroughput(ScaleUp, w4) {
		t.Error("scale-out should beat scale-up")
	}
	// rf=4 cuts writes, leaves reads nearly flat.
	w9 := wl(1024, broker.AcksNone, 4, 4, Local)
	if ProducerThroughput(ScaleOut, w9) >= ProducerThroughput(ScaleOut, w4) {
		t.Error("rf=4 should cut write throughput")
	}
	consDrop := ConsumerThroughput(ScaleOut, w4) - ConsumerThroughput(ScaleOut, w9)
	if consDrop/ConsumerThroughput(ScaleOut, w4) > 0.05 {
		t.Errorf("rf=4 read drop = %.1f%%, want <5%%", 100*consDrop/ConsumerThroughput(ScaleOut, w4))
	}
	// Remote produce trails local (same config).
	if ProducerThroughput(Baseline, wl(1024, broker.AcksNone, 2, 2, Remote)) >= p0 {
		t.Error("remote produce should trail local")
	}
}

func TestLatencyAnchors(t *testing.T) {
	// Table III medians at saturation.
	cases := []struct {
		name    string
		cluster ClusterSpec
		w       Workload
		med     float64
	}{
		{"exp1-local", Baseline, wl(32, broker.AcksNone, 2, 2, Local), 54},
		{"exp1-remote", Baseline, wl(32, broker.AcksNone, 2, 2, Remote), 86},
		{"exp2-local", Baseline, wl(1024, broker.AcksNone, 2, 2, Local), 40},
		{"exp2-remote", Baseline, wl(1024, broker.AcksNone, 2, 2, Remote), 76},
		{"exp3-local", Baseline, wl(1024, broker.AcksLeader, 2, 2, Local), 49},
		{"exp4-local", Baseline, wl(1024, broker.AcksAll, 2, 2, Local), 141},
		{"exp4-remote", Baseline, wl(1024, broker.AcksAll, 2, 2, Remote), 138},
		{"exp6-local", Baseline, wl(1024, broker.AcksNone, 4, 2, Local), 32},
		{"exp7-local", ScaleUp, wl(1024, broker.AcksNone, 4, 2, Local), 16},
		{"exp8-local", ScaleOut, wl(1024, broker.AcksNone, 4, 2, Local), 19},
		{"exp8-remote", ScaleOut, wl(1024, broker.AcksNone, 4, 2, Remote), 41},
		{"exp9-local", ScaleOut, wl(1024, broker.AcksNone, 4, 4, Local), 27},
	}
	for _, c := range cases {
		got := MedianLatency(c.cluster, c.w)
		if math.Abs(got-c.med) > c.med*0.1+1 {
			t.Errorf("%s median = %.1f, want %.0f", c.name, got, c.med)
		}
	}
}

func TestLatencyRisesWithUtilization(t *testing.T) {
	w := wl(1024, broker.AcksNone, 2, 2, Remote)
	low := MedianLatencyAt(Baseline, w, 0.2)
	high := MedianLatencyAt(Baseline, w, 1.0)
	if low >= high {
		t.Errorf("latency not increasing with load: %.1f vs %.1f", low, high)
	}
	if p99 := P99LatencyAt(Baseline, w, 1.0); p99 <= high {
		t.Errorf("p99 (%.1f) should exceed median (%.1f)", p99, high)
	}
}

func TestAcksLatencyPenalties(t *testing.T) {
	med0 := MedianLatency(Baseline, wl(1024, broker.AcksNone, 2, 2, Local))
	med1 := MedianLatency(Baseline, wl(1024, broker.AcksLeader, 2, 2, Local))
	medAll := MedianLatency(Baseline, wl(1024, broker.AcksAll, 2, 2, Local))
	if !(med0 < med1 && med1 < medAll) {
		t.Errorf("median acks ordering broken: %.1f %.1f %.1f", med0, med1, medAll)
	}
}

func TestTriggerThroughput(t *testing.T) {
	// §V-D: 1 partition → 22 K / 7 K / 2 K ev/s.
	closeTo(t, "trigger-32B-1p", TriggerThroughput(32, 1), 22e3, 0.02)
	closeTo(t, "trigger-1KB-1p", TriggerThroughput(1024, 1), 7e3, 0.02)
	closeTo(t, "trigger-4KB-1p", TriggerThroughput(4096, 1), 2e3, 0.02)
	// 8 partitions → ~147 K / 39 K / 12 K ("roughly six times faster").
	closeTo(t, "trigger-32B-8p", TriggerThroughput(32, 8), 147e3, 0.08)
	ratio := TriggerThroughput(1024, 8) / TriggerThroughput(1024, 1)
	if ratio < 5.5 || ratio > 7.5 {
		t.Errorf("8-partition speedup = %.2f, want ~6-7x", ratio)
	}
}

func TestTenancyShape(t *testing.T) {
	// Producer throughput saturates at 4 topics (= 4 brokers).
	p4 := TenancyProducerThroughput(4)
	closeTo(t, "tenancy-prod-4", p4, 273e3, 0.01)
	if TenancyProducerThroughput(8) != p4 || TenancyProducerThroughput(32) != p4 {
		t.Error("producer tenancy should be flat past 4 topics")
	}
	if TenancyProducerThroughput(1) >= p4 {
		t.Error("producer tenancy should rise 1 -> 4 topics")
	}
	// Consumer throughput keeps rising to 16 topics then flattens.
	c16 := TenancyConsumerThroughput(16)
	closeTo(t, "tenancy-cons-16", c16, 846e3, 0.01)
	if !(TenancyConsumerThroughput(1) < TenancyConsumerThroughput(4) &&
		TenancyConsumerThroughput(4) < c16) {
		t.Error("consumer tenancy should rise to 16 topics")
	}
	if TenancyConsumerThroughput(32) != c16 {
		t.Error("consumer tenancy should be flat past 16 topics")
	}
}

func TestPerProducerRateSaturation(t *testing.T) {
	w := wl(1024, broker.AcksNone, 2, 2, Remote)
	cap := ProducerThroughput(Baseline, w)
	per := PerProducerRate(Baseline, w)
	// 100 producers should overdrive the cluster; 20 should not.
	if 100*per <= cap {
		t.Error("100 producers should saturate the baseline cluster")
	}
	if 20*per >= cap {
		t.Error("20 producers should not saturate")
	}
}

func TestInterpolationMonotone(t *testing.T) {
	prev := math.Inf(1)
	for size := 32; size <= 4096; size *= 2 {
		r := ProducerThroughput(Baseline, wl(size, broker.AcksNone, 2, 2, Local))
		if r >= prev {
			t.Errorf("throughput not decreasing in size at %d: %.0f >= %.0f", size, r, prev)
		}
		prev = r
	}
}

func TestClusterSpecAccessors(t *testing.T) {
	if Baseline.VCPUs() != 2 || Baseline.MemGB() != 8 {
		t.Errorf("baseline specs: %d vCPU / %d GB", Baseline.VCPUs(), Baseline.MemGB())
	}
	if ScaleUp.VCPUs() != 4 || ScaleUp.MemGB() != 16 {
		t.Errorf("scale-up specs: %d vCPU / %d GB", ScaleUp.VCPUs(), ScaleUp.MemGB())
	}
	if Local.String() != "local" || Remote.String() != "remote" {
		t.Error("locality strings")
	}
}
