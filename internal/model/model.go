// Package model is the calibrated analytic performance model of the
// paper's AWS MSK testbed. We cannot rent the authors' MSK clusters and
// Chameleon bare-metal clients, so the testbed experiments (Table III,
// Figures 3 and 5, and the §V-D trigger-throughput numbers) are driven
// by this model instead: a small set of anchor measurements taken
// directly from the paper, composed through multiplicative factors with
// a queueing-style latency curve.
//
// The model is calibrated, not fabricated: every constant below is a
// number from Table III or derived as a ratio of two of its cells, and
// the composition rules (per-event + per-byte service cost, replication
// discount, cluster-size efficiency) are stated in DESIGN.md §5. The
// functional broker (internal/broker) is real and is exercised by the
// integration tests and the figure-4/7/8 experiments; this package only
// supplies the *throughput ceilings and latency floors* that depend on
// hardware we do not have.
package model

import (
	"math"
	"sort"

	"repro/internal/broker"
)

// Locality is the client's network position relative to the fabric.
type Locality int

// Client localities (§V-A: local EC2 vs remote Chameleon@TACC).
const (
	Local Locality = iota
	Remote
)

func (l Locality) String() string {
	if l == Remote {
		return "remote"
	}
	return "local"
}

// BrokerType identifies an instance type from Table II.
type BrokerType string

// Instance types.
const (
	M5Large  BrokerType = "kafka.m5.large"  // 2 vCPU, 8 GB
	M5XLarge BrokerType = "kafka.m5.xlarge" // 4 vCPU, 16 GB
)

// typeFactor is the relative write capacity of an instance type
// (scale-up row of Table III: 238 K / 202 K per-broker at 1 KB).
func typeFactor(t BrokerType) float64 {
	if t == M5XLarge {
		return 1.18
	}
	return 1.0
}

// ClusterSpec is a Table II cluster configuration.
type ClusterSpec struct {
	Name    string
	Brokers int
	Type    BrokerType
}

// The three testbed clusters of Table II.
var (
	Baseline = ClusterSpec{Name: "Baseline", Brokers: 2, Type: M5Large}
	ScaleUp  = ClusterSpec{Name: "Scale-up", Brokers: 2, Type: M5XLarge}
	ScaleOut = ClusterSpec{Name: "Scale-out", Brokers: 4, Type: M5Large}
)

// VCPUs returns vCPUs per broker for the cluster's instance type.
func (c ClusterSpec) VCPUs() int {
	if c.Type == M5XLarge {
		return 4
	}
	return 2
}

// MemGB returns memory per broker.
func (c ClusterSpec) MemGB() int {
	if c.Type == M5XLarge {
		return 16
	}
	return 8
}

// Workload describes one produce/consume experiment configuration.
type Workload struct {
	EventSize         int // bytes
	Acks              broker.Acks
	Partitions        int
	ReplicationFactor int
	Locality          Locality
}

// --- Throughput anchors (events/s), straight from Table III rows 1/2/5
// on the baseline cluster (rf=2, partitions=2, acks=0). ---

type anchor struct {
	size int
	rate float64
}

var prodAnchors = map[Locality][]anchor{
	Local:  {{32, 4.289e6}, {1024, 195e3}, {4096, 43e3}},
	Remote: {{32, 4.202e6}, {1024, 174e3}, {4096, 39e3}},
}

var consAnchors = map[Locality][]anchor{
	Local:  {{32, 9.840e6}, {1024, 356e3}, {4096, 91e3}},
	Remote: {{32, 9.646e6}, {1024, 367e3}, {4096, 94e3}},
}

// interpRate interpolates an anchor table log-log in event size; sizes
// beyond the anchors extrapolate along the nearest segment.
func interpRate(anchors []anchor, size int) float64 {
	if size <= anchors[0].size {
		return anchors[0].rate
	}
	i := sort.Search(len(anchors), func(i int) bool { return anchors[i].size >= size })
	if i == len(anchors) {
		// Extrapolate past the last anchor on the final segment's slope.
		i = len(anchors) - 1
	}
	lo, hi := anchors[i-1], anchors[i]
	t := (math.Log(float64(size)) - math.Log(float64(lo.size))) /
		(math.Log(float64(hi.size)) - math.Log(float64(lo.size)))
	logRate := math.Log(lo.rate)*(1-t) + math.Log(hi.rate)*t
	return math.Exp(logRate)
}

// acksFactor is the write-throughput cost of acknowledgment level
// (Table III rows 2 vs 3 vs 4).
func acksFactor(a broker.Acks, l Locality) float64 {
	switch a {
	case broker.AcksLeader:
		if l == Remote {
			return 143.0 / 174.0
		}
		return 161.0 / 195.0
	case broker.AcksAll:
		if l == Remote {
			return 65.0 / 174.0
		}
		return 65.0 / 195.0
	default:
		return 1.0
	}
}

// partitionsFactor is the modest write gain from more partitions
// (rows 2 vs 6: 195→202 K local).
func partitionsFactor(parts int) float64 {
	if parts <= 2 {
		return 1.0
	}
	// +3.6 % at 4 partitions, saturating logarithmically.
	return 1.0 + 0.036*math.Log2(float64(parts)/2)
}

// replicationGamma is the marginal cost of each extra replica relative
// to the leader write, fit from rows 8 vs 9 (319→246 K at rf 2→4).
const replicationGamma = 0.174

// rfFactor normalizes replication factor against the rf=2 anchors.
func rfFactor(rf int) float64 {
	if rf < 1 {
		rf = 1
	}
	base := 1 + replicationGamma // rf=2 anchor cost
	cost := 1 + replicationGamma*float64(rf-1)
	return base / cost
}

// clusterEfficiency captures the sublinear coordination cost of more
// brokers (scale-out per-broker capacity is ~82 % of baseline's).
func clusterEfficiency(brokers int) float64 {
	if brokers <= 2 {
		return 1.0
	}
	return 1.0 / (1.0 + 0.11*float64(brokers-2))
}

// clusterWriteFactor is total write capacity relative to the baseline
// cluster. Remote clients see slightly different scaling because the
// WAN pipeline, not the broker, is their secondary bottleneck; the
// remoteDamp term reproduces rows 7–8's local/remote split.
func clusterWriteFactor(c ClusterSpec, l Locality) float64 {
	perBroker := typeFactor(c.Type) * clusterEfficiency(c.Brokers)
	f := perBroker * float64(c.Brokers) / 2.0 // baseline = 2 × large
	if l == Remote && f > 1 {
		// Remote producers realize ~70 % of local cluster scaling gains
		// for scale-up (row 7: 184 vs 238 K) but nearly all for
		// scale-out (row 8: 303 vs 319 K, where more leaders help WAN
		// pipelining). Dampen only the per-broker (vertical) component.
		vertical := typeFactor(c.Type)
		f = f / vertical * (1 + (vertical-1)*0.3)
	}
	return f
}

// clusterReadFactor is total read capacity relative to baseline.
// Reads scale better than writes (rows 7–8: 751–785 K vs 356 K).
func clusterReadFactor(c ClusterSpec, l Locality) float64 {
	switch {
	case c.Brokers <= 2 && c.Type == M5Large:
		return 1.0
	case c.Brokers <= 2 && c.Type == M5XLarge:
		if l == Remote {
			return 597.0 / 389.0
		}
		return 751.0 / 374.0
	default: // scale-out
		if l == Remote {
			return 813.0 / 389.0
		}
		return 785.0 / 374.0
	}
}

// consumerRFFactor: reads are served by leaders only, so replication
// barely moves them (rows 8 vs 9: 785→777 K).
func consumerRFFactor(rf int) float64 {
	if rf <= 2 {
		return 1.0
	}
	return 0.99
}

// ProducerThroughput returns the sustainable produce rate (events/s)
// for the cluster under the workload, with all producers combined.
func ProducerThroughput(c ClusterSpec, w Workload) float64 {
	rate := interpRate(prodAnchors[w.Locality], w.EventSize)
	rate *= acksFactor(w.Acks, w.Locality)
	rate *= partitionsFactor(w.Partitions)
	rate *= rfFactor(w.ReplicationFactor)
	rate *= clusterWriteFactor(c, w.Locality)
	return rate
}

// ConsumerThroughput returns the sustainable consume rate (events/s).
// Reads do not pay acknowledgment costs.
func ConsumerThroughput(c ClusterSpec, w Workload) float64 {
	rate := interpRate(consAnchors[w.Locality], w.EventSize)
	rate *= partitionsFactor(w.Partitions)
	rate *= consumerRFFactor(w.ReplicationFactor)
	rate *= clusterReadFactor(c, w.Locality)
	return rate
}

// --- Latency model ---
//
// Median and P99 latency are modeled as a queueing curve anchored at the
// saturation latencies of Table III: lat(ρ) = floor + (anchor − floor)·ρ²,
// where ρ is offered/capacity utilization. Anchors compose a base (size,
// locality) term with additive acknowledgment penalties (the paper's
// deltas: +9/+101 ms local, +16/+62 ms remote) and cluster adjustments.

// medBase is the saturation median latency at acks=0, partitions=2,
// baseline cluster (Table III rows 1/2/5).
type latPt struct {
	size int
	ms   float64
}

func medBase(size int, l Locality) float64 {
	if l == Remote {
		return interpPts([3]latPt{{32, 86}, {1024, 76}, {4096, 66}}, size)
	}
	return interpPts([3]latPt{{32, 54}, {1024, 40}, {4096, 37}}, size)
}

func p99Base(size int, l Locality) float64 {
	if l == Remote {
		return interpPts([3]latPt{{32, 198}, {1024, 189}, {4096, 174}}, size)
	}
	return interpPts([3]latPt{{32, 165}, {1024, 181}, {4096, 146}}, size)
}

func interpPts(pts [3]latPt, size int) float64 {
	if size <= pts[0].size {
		return pts[0].ms
	}
	if size >= pts[2].size {
		return pts[2].ms
	}
	for i := 1; i < 3; i++ {
		if size <= pts[i].size {
			lo, hi := pts[i-1], pts[i]
			t := (math.Log(float64(size)) - math.Log(float64(lo.size))) /
				(math.Log(float64(hi.size)) - math.Log(float64(lo.size)))
			return lo.ms*(1-t) + hi.ms*t
		}
	}
	return pts[2].ms
}

// acksMedPenalty is the additive median-latency cost of acknowledgments
// (rows 2→3→4 deltas).
func acksMedPenalty(a broker.Acks, l Locality) float64 {
	switch a {
	case broker.AcksLeader:
		if l == Remote {
			return 16
		}
		return 9
	case broker.AcksAll:
		if l == Remote {
			return 62
		}
		return 101
	default:
		return 0
	}
}

func acksP99Penalty(a broker.Acks, l Locality) float64 {
	switch a {
	case broker.AcksLeader:
		if l == Remote {
			return 20
		}
		return -2 // row 3: 179 vs 181 — within noise; keep the table's value
	case broker.AcksAll:
		if l == Remote {
			return 91
		}
		return 92
	default:
		return 0
	}
}

// clusterMedAdj reproduces the latency shifts of rows 6–9: more
// partitions cut median (leader parallelism); bigger/more brokers cut
// it further.
func clusterMedAdj(c ClusterSpec, parts int, l Locality) float64 {
	adj := 1.0
	if parts >= 4 {
		if l == Remote {
			adj *= 73.0 / 76.0
		} else {
			adj *= 32.0 / 40.0
		}
	}
	switch {
	case c.Type == M5XLarge:
		if l == Remote {
			adj *= 67.0 / 73.0
		} else {
			adj *= 16.0 / 32.0
		}
	case c.Brokers >= 4:
		if l == Remote {
			adj *= 41.0 / 73.0
		} else {
			adj *= 19.0 / 32.0
		}
	}
	return adj
}

// clusterP99Adj: row 6 shows P99 *rising* with partitions (181→291 ms
// local) — more partitions mean more uneven batch completion — while
// scale-out pulls it back down (168 ms).
func clusterP99Adj(c ClusterSpec, parts int, l Locality) float64 {
	adj := 1.0
	if parts >= 4 {
		if l == Remote {
			adj *= 213.0 / 189.0
		} else {
			adj *= 291.0 / 181.0
		}
	}
	switch {
	case c.Type == M5XLarge:
		if l == Remote {
			adj *= 279.0 / 213.0
		} else {
			adj *= 352.0 / 291.0
		}
	case c.Brokers >= 4:
		if l == Remote {
			adj *= 186.0 / 213.0
		} else {
			adj *= 168.0 / 291.0
		}
	}
	return adj
}

// rfMedAdj: rf=4 raises median modestly (rows 8→9: 19→27 ms local).
func rfMedAdj(rf int) float64 {
	if rf <= 2 {
		return 1
	}
	return 27.0 / 19.0
}

func rfP99Adj(rf int, l Locality) float64 {
	if rf <= 2 {
		return 1
	}
	if l == Remote {
		return 336.0 / 186.0
	}
	return 203.0 / 168.0
}

// MedianLatencyAt returns the median produce latency in ms at the given
// utilization (0..1].
func MedianLatencyAt(c ClusterSpec, w Workload, utilization float64) float64 {
	sat := medBase(w.EventSize, w.Locality) * clusterMedAdj(c, w.Partitions, w.Locality) * rfMedAdj(w.ReplicationFactor)
	sat += acksMedPenalty(w.Acks, w.Locality)
	floor := latencyFloor(w)
	if sat < floor {
		sat = floor
	}
	rho := clamp01(utilization)
	return floor + (sat-floor)*rho*rho
}

// P99LatencyAt returns the 99th-percentile produce latency in ms.
func P99LatencyAt(c ClusterSpec, w Workload, utilization float64) float64 {
	sat := p99Base(w.EventSize, w.Locality) * clusterP99Adj(c, w.Partitions, w.Locality) * rfP99Adj(w.ReplicationFactor, w.Locality)
	sat += acksP99Penalty(w.Acks, w.Locality)
	floor := 2 * latencyFloor(w)
	if sat < floor {
		sat = floor
	}
	rho := clamp01(utilization)
	return floor + (sat-floor)*rho*rho
}

// latencyFloor is the zero-load latency: network RTT (for acked sends)
// plus a small service time.
func latencyFloor(w Workload) float64 {
	service := 2.0 // ms: batch accumulation + broker append
	switch {
	case w.Acks == broker.AcksNone:
		// Fire-and-forget still observes client-side batch latency.
		if w.Locality == Remote {
			return service + 4
		}
		return service
	case w.Locality == Remote:
		rtt := 46.5
		if w.Acks == broker.AcksAll {
			rtt += 2 // intra-cluster replication round trip
		}
		return service + rtt
	default:
		rtt := 0.5
		if w.Acks == broker.AcksAll {
			rtt += 2
		}
		return service + rtt
	}
}

// MedianLatency returns the saturation median latency (the Table III
// reporting point).
func MedianLatency(c ClusterSpec, w Workload) float64 { return MedianLatencyAt(c, w, 1) }

// P99Latency returns the saturation P99 latency.
func P99Latency(c ClusterSpec, w Workload) float64 { return P99LatencyAt(c, w, 1) }

// --- Per-producer offered load (Figure 3 sweeps) ---

// PerProducerRate is the rate one producer can offer: a pipeline of
// in-flight batches bounded by the client's 256 KB buffer. Calibrated so
// that the paper's 100-producer sweeps saturate the baseline cluster at
// roughly 80 producers.
func PerProducerRate(c ClusterSpec, w Workload) float64 {
	return ProducerThroughput(c, w) / 80.0
}

// --- Trigger throughput (§V-D) ---

// triggerPartitionRate is the single-partition trigger consume rate.
var triggerAnchors = []anchor{{32, 22e3}, {1024, 7e3}, {4096, 2e3}}

// TriggerThroughput returns trigger events/s for an event size and
// partition count ("with 8 partitions ... roughly six times faster").
func TriggerThroughput(eventSize, partitions int) float64 {
	base := interpRate(triggerAnchors, eventSize)
	if partitions <= 1 {
		return base
	}
	return base * math.Pow(float64(partitions), 0.913)
}

// --- Multi-tenancy (Figure 5) ---

// TenancyProducerThroughput models §V-E: 32 producers over N topics
// (1 partition, rf=2) on the scale-out cluster. Writes scale with the
// number of distinct leader brokers and saturate at 4 topics = 4 brokers
// (273 K ev/s at 1 KB).
func TenancyProducerThroughput(topics int) float64 {
	const peak = 273e3
	lead := float64(topics)
	if lead > 4 {
		lead = 4
	}
	return peak * lead / 4
}

// TenancyConsumerThroughput: reads keep scaling until 16 topics
// (846 K ev/s), limited by per-topic fetch parallelism.
func TenancyConsumerThroughput(topics int) float64 {
	const peak = 846e3
	n := float64(topics)
	if n > 16 {
		n = 16
	}
	// Diminishing returns toward the 16-topic peak.
	return peak * math.Log2(1+n) / math.Log2(17)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
