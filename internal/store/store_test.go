package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/vclock"
)

func newFabric(t *testing.T, topic string, parts int) *broker.Fabric {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts}); err != nil {
		t.Fatal(err)
	}
	return f
}

func produceKeyed(t *testing.T, f *broker.Fabric, topic string, n int) {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Key:     []byte(fmt.Sprintf("k%d", i%3)),
			Value:   []byte(fmt.Sprintf("v%d", i)),
			Headers: map[string]string{"seq": fmt.Sprintf("%d", i)},
		}
	}
	if _, err := f.Produce("", topic, -1, evs, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveAndReadBack(t *testing.T) {
	f := newFabric(t, "t", 2)
	produceKeyed(t, f, "t", 40)
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.ArchiveTopic(f, "t")
	if err != nil || n != 40 {
		t.Fatalf("archived %d, %v", n, err)
	}
	total := 0
	for p := 0; p < 2; p++ {
		evs, err := a.ReadPartition("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(evs)
		// Offsets preserved and increasing.
		for i := 1; i < len(evs); i++ {
			if evs[i].Offset <= evs[i-1].Offset {
				t.Fatalf("offsets not increasing: %d then %d", evs[i-1].Offset, evs[i].Offset)
			}
		}
		// Headers survive the round trip.
		if len(evs) > 0 && evs[0].Headers["seq"] == "" {
			t.Fatal("headers lost")
		}
	}
	if total != 40 {
		t.Fatalf("read back %d", total)
	}
}

func TestArchiveIsIncrementalAndIdempotent(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 10)
	a, _ := NewArchive(t.TempDir())
	if n, _ := a.ArchiveTopic(f, "t"); n != 10 {
		t.Fatalf("first pass archived %d", n)
	}
	// Nothing new: second pass is a no-op.
	if n, _ := a.ArchiveTopic(f, "t"); n != 0 {
		t.Fatalf("idempotent pass archived %d", n)
	}
	produceKeyed(t, f, "t", 5)
	if n, _ := a.ArchiveTopic(f, "t"); n != 5 {
		t.Fatalf("incremental pass archived %d", n)
	}
	evs, err := a.ReadPartition("t", 0)
	if err != nil || len(evs) != 15 {
		t.Fatalf("read back %d, %v", len(evs), err)
	}
}

func TestRestoreIntoFreshFabric(t *testing.T) {
	f1 := newFabric(t, "t", 2)
	produceKeyed(t, f1, "t", 30)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f1, "t"); err != nil {
		t.Fatal(err)
	}
	// Disaster: a brand-new fabric restores the topic from the archive.
	f2 := broker.NewFabric(nil)
	if err := f2.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	n, err := a.RestoreTopic(f2, "t", cluster.TopicConfig{Partitions: 2})
	if err != nil || n != 30 {
		t.Fatalf("restored %d, %v", n, err)
	}
	// Contents and per-partition order match the original.
	for p := 0; p < 2; p++ {
		orig, _ := f1.Fetch("", "t", p, 0, 100, 0)
		rest, _ := f2.Fetch("", "t", p, 0, 100, 0)
		if len(orig.Events) != len(rest.Events) {
			t.Fatalf("partition %d: %d vs %d events", p, len(orig.Events), len(rest.Events))
		}
		for i := range orig.Events {
			if string(orig.Events[i].Value) != string(rest.Events[i].Value) {
				t.Fatalf("partition %d event %d differs", p, i)
			}
		}
	}
}

func TestCorruptObjectDetected(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 5)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the archived object.
	entries, _ := os.ReadDir(filepath.Join(dir, "t", "p0"))
	path := filepath.Join(dir, "t", "p0", entries[0].Name())
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadPartition("t", 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestTopicsAndPartitionsListing(t *testing.T) {
	f := newFabric(t, "b-topic", 3)
	if _, err := f.CreateTopic("a-topic", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceKeyed(t, f, "b-topic", 6)
	produceKeyed(t, f, "a-topic", 2)
	a, _ := NewArchive(t.TempDir())
	if _, err := a.ArchiveTopic(f, "b-topic"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ArchiveTopic(f, "a-topic"); err != nil {
		t.Fatal(err)
	}
	topics, err := a.Topics()
	if err != nil || len(topics) != 2 || topics[0] != "a-topic" {
		t.Fatalf("topics = %v, %v", topics, err)
	}
	parts, err := a.Partitions("b-topic")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) == 0 {
		t.Fatal("no partitions archived")
	}
}

func TestRestoreMissingTopic(t *testing.T) {
	a, _ := NewArchive(t.TempDir())
	f := newFabric(t, "x", 1)
	if _, err := a.RestoreTopic(f, "ghost", cluster.TopicConfig{}); err == nil {
		t.Fatal("missing archive accepted")
	}
}

func TestArchiveSurvivesRetention(t *testing.T) {
	// Archive, expire the live log via retention, archive again: the
	// early objects still hold the expired records.
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 10)
	a, _ := NewArchive(t.TempDir())
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	evs, err := a.ReadPartition("t", 0)
	if err != nil || len(evs) != 10 {
		t.Fatalf("archive holds %d", len(evs))
	}
}

func segPath(t *testing.T, dir, topic string, partition int) string {
	t.Helper()
	pdir := filepath.Join(dir, topic, fmt.Sprintf("p%d", partition))
	entries, err := os.ReadDir(pdir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no archived objects in %s: %v", pdir, err)
	}
	return filepath.Join(pdir, entries[0].Name())
}

func TestTruncatedObjectDetected(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 5)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir, "t", 0)
	data, _ := os.ReadFile(path)
	for _, cut := range []int{3, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := a.ReadPartition("t", 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("object truncated to %d bytes not detected: %v", cut, err)
		}
	}
}

func TestFlippedChecksumDetected(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 5)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the stored crc header itself (the body is intact).
	path := segPath(t, dir, "t", 0)
	data, _ := os.ReadFile(path)
	data[0] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadPartition("t", 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped crc not detected: %v", err)
	}
	if _, err := a.ReadTier("t", 0, 0, 10, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped crc not detected by ReadTier: %v", err)
	}
}

func TestPartialRestoreReturnsErrCorrupt(t *testing.T) {
	f := newFabric(t, "t", 2)
	produceKeyed(t, f, "t", 20)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	// Corrupt partition 1's object only: the restore replays partition 0,
	// then surfaces ErrCorrupt with the partial count.
	path := segPath(t, dir, "t", 1)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f2 := broker.NewFabric(nil)
	if err := f2.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	p0, _ := a.ReadPartition("t", 0)
	n, err := a.RestoreTopic(f2, "t", cluster.TopicConfig{Partitions: 2})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial restore err = %v; want ErrCorrupt", err)
	}
	if n != len(p0) {
		t.Fatalf("restored %d; want partition 0's %d", n, len(p0))
	}
	res, err := f2.Fetch("", "t", 0, 0, 100, 0)
	if err != nil || len(res.Events) != len(p0) {
		t.Fatalf("restored partition unreadable: %d events, %v", len(res.Events), err)
	}
}

func TestReadTierBudgetsAndRange(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 12)
	a, _ := NewArchive(t.TempDir())
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	evs, err := a.ReadTier("t", 0, 4, 3, 0, nil)
	if err != nil || len(evs) != 3 || evs[0].Offset != 4 {
		t.Fatalf("mid-range read: %d events from %d, %v", len(evs), evs[0].Offset, err)
	}
	if evs[0].Topic != "t" || evs[0].Partition != 0 {
		t.Fatalf("tiered events not stamped: %+v", evs[0])
	}
	// A one-byte budget still returns at least one event.
	evs, err = a.ReadTier("t", 0, 0, 10, 1, nil)
	if err != nil || len(evs) != 1 {
		t.Fatalf("tiny byte budget: %d events, %v", len(evs), err)
	}
	// Past the archived range: empty, no error.
	evs, err = a.ReadTier("t", 0, 1000, 10, 0, nil)
	if err != nil || len(evs) != 0 {
		t.Fatalf("past-end read: %d events, %v", len(evs), err)
	}
	// Unarchived partition: empty, no error.
	evs, err = a.ReadTier("ghost", 9, 0, 10, 0, nil)
	if err != nil || len(evs) != 0 {
		t.Fatalf("missing partition read: %d events, %v", len(evs), err)
	}
}

func TestTieredFetchThroughBroker(t *testing.T) {
	// Offsets below local retention are served from the archive through
	// the broker's tiered-read path, transparently to the consumer.
	clk := vclock.NewVirtual(time.Unix(1_700_000_000, 0))
	f := broker.NewFabric(clk)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic("t", "", cluster.TopicConfig{Partitions: 1, Retention: time.Hour}); err != nil {
		t.Fatal(err)
	}
	// 1 MiB values seal segments quickly (4 MiB roll threshold).
	big := make([]byte, 1<<20)
	for i := 0; i < 10; i++ {
		copy(big, fmt.Sprintf("big%02d", i))
		if _, err := f.Produce("", "t", 0, []event.Event{{Value: big}}, broker.AcksLeader); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if n, err := a.ArchiveTopic(f, "t"); err != nil || n != 10 {
		t.Fatalf("archived %d, %v", n, err)
	}
	// Let retention expire the sealed local segments.
	clk.Advance(2 * time.Hour)
	if f.EnforceRetention() == 0 {
		t.Fatal("retention dropped nothing")
	}
	start, _ := f.StartOffset("t", 0)
	if start == 0 {
		t.Fatal("local start offset did not advance")
	}
	// Without a tiered reader, offset 0 is gone.
	if _, err := f.Fetch("", "t", 0, 0, 100, 0); err == nil {
		t.Fatal("expired offset served without archive")
	}
	f.SetTieredReader(a)
	res, err := f.Fetch("", "t", 0, 0, 3, 0)
	if err != nil || len(res.Events) != 3 {
		t.Fatalf("tiered fetch: %d events, %v", len(res.Events), err)
	}
	for i, ev := range res.Events {
		want := fmt.Sprintf("big%02d", i)
		if ev.Offset != int64(i) || string(ev.Value[:5]) != want {
			t.Fatalf("tiered event %d: offset %d value %q", i, ev.Offset, ev.Value[:5])
		}
	}
	// Offsets at or above the local start still come from the live log.
	res, err = f.Fetch("", "t", 0, start, 100, 0)
	if err != nil || len(res.Events) == 0 {
		t.Fatalf("local fetch after retention: %d events, %v", len(res.Events), err)
	}
}
