package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

func newFabric(t *testing.T, topic string, parts int) *broker.Fabric {
	t.Helper()
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTopic(topic, "", cluster.TopicConfig{Partitions: parts}); err != nil {
		t.Fatal(err)
	}
	return f
}

func produceKeyed(t *testing.T, f *broker.Fabric, topic string, n int) {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		evs[i] = event.Event{
			Key:     []byte(fmt.Sprintf("k%d", i%3)),
			Value:   []byte(fmt.Sprintf("v%d", i)),
			Headers: map[string]string{"seq": fmt.Sprintf("%d", i)},
		}
	}
	if _, err := f.Produce("", topic, -1, evs, broker.AcksLeader); err != nil {
		t.Fatal(err)
	}
}

func TestArchiveAndReadBack(t *testing.T) {
	f := newFabric(t, "t", 2)
	produceKeyed(t, f, "t", 40)
	a, err := NewArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.ArchiveTopic(f, "t")
	if err != nil || n != 40 {
		t.Fatalf("archived %d, %v", n, err)
	}
	total := 0
	for p := 0; p < 2; p++ {
		evs, err := a.ReadPartition("t", p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(evs)
		// Offsets preserved and increasing.
		for i := 1; i < len(evs); i++ {
			if evs[i].Offset <= evs[i-1].Offset {
				t.Fatalf("offsets not increasing: %d then %d", evs[i-1].Offset, evs[i].Offset)
			}
		}
		// Headers survive the round trip.
		if len(evs) > 0 && evs[0].Headers["seq"] == "" {
			t.Fatal("headers lost")
		}
	}
	if total != 40 {
		t.Fatalf("read back %d", total)
	}
}

func TestArchiveIsIncrementalAndIdempotent(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 10)
	a, _ := NewArchive(t.TempDir())
	if n, _ := a.ArchiveTopic(f, "t"); n != 10 {
		t.Fatalf("first pass archived %d", n)
	}
	// Nothing new: second pass is a no-op.
	if n, _ := a.ArchiveTopic(f, "t"); n != 0 {
		t.Fatalf("idempotent pass archived %d", n)
	}
	produceKeyed(t, f, "t", 5)
	if n, _ := a.ArchiveTopic(f, "t"); n != 5 {
		t.Fatalf("incremental pass archived %d", n)
	}
	evs, err := a.ReadPartition("t", 0)
	if err != nil || len(evs) != 15 {
		t.Fatalf("read back %d, %v", len(evs), err)
	}
}

func TestRestoreIntoFreshFabric(t *testing.T) {
	f1 := newFabric(t, "t", 2)
	produceKeyed(t, f1, "t", 30)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f1, "t"); err != nil {
		t.Fatal(err)
	}
	// Disaster: a brand-new fabric restores the topic from the archive.
	f2 := broker.NewFabric(nil)
	if err := f2.AddBrokers(2, 2, 8); err != nil {
		t.Fatal(err)
	}
	n, err := a.RestoreTopic(f2, "t", cluster.TopicConfig{Partitions: 2})
	if err != nil || n != 30 {
		t.Fatalf("restored %d, %v", n, err)
	}
	// Contents and per-partition order match the original.
	for p := 0; p < 2; p++ {
		orig, _ := f1.Fetch("", "t", p, 0, 100, 0)
		rest, _ := f2.Fetch("", "t", p, 0, 100, 0)
		if len(orig.Events) != len(rest.Events) {
			t.Fatalf("partition %d: %d vs %d events", p, len(orig.Events), len(rest.Events))
		}
		for i := range orig.Events {
			if string(orig.Events[i].Value) != string(rest.Events[i].Value) {
				t.Fatalf("partition %d event %d differs", p, i)
			}
		}
	}
}

func TestCorruptObjectDetected(t *testing.T) {
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 5)
	dir := t.TempDir()
	a, _ := NewArchive(dir)
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the archived object.
	entries, _ := os.ReadDir(filepath.Join(dir, "t", "p0"))
	path := filepath.Join(dir, "t", "p0", entries[0].Name())
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadPartition("t", 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestTopicsAndPartitionsListing(t *testing.T) {
	f := newFabric(t, "b-topic", 3)
	if _, err := f.CreateTopic("a-topic", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	produceKeyed(t, f, "b-topic", 6)
	produceKeyed(t, f, "a-topic", 2)
	a, _ := NewArchive(t.TempDir())
	if _, err := a.ArchiveTopic(f, "b-topic"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ArchiveTopic(f, "a-topic"); err != nil {
		t.Fatal(err)
	}
	topics, err := a.Topics()
	if err != nil || len(topics) != 2 || topics[0] != "a-topic" {
		t.Fatalf("topics = %v, %v", topics, err)
	}
	parts, err := a.Partitions("b-topic")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) == 0 {
		t.Fatal("no partitions archived")
	}
}

func TestRestoreMissingTopic(t *testing.T) {
	a, _ := NewArchive(t.TempDir())
	f := newFabric(t, "x", 1)
	if _, err := a.RestoreTopic(f, "ghost", cluster.TopicConfig{}); err == nil {
		t.Fatal("missing archive accepted")
	}
}

func TestArchiveSurvivesRetention(t *testing.T) {
	// Archive, expire the live log via retention, archive again: the
	// early objects still hold the expired records.
	f := newFabric(t, "t", 1)
	produceKeyed(t, f, "t", 10)
	a, _ := NewArchive(t.TempDir())
	if _, err := a.ArchiveTopic(f, "t"); err != nil {
		t.Fatal(err)
	}
	evs, err := a.ReadPartition("t", 0)
	if err != nil || len(evs) != 10 {
		t.Fatalf("archive holds %d", len(evs))
	}
}
