// Package store implements the persistence path of Figure 2 ("Events
// can also be persisted to reliable cloud storage when enabled"): topic
// archival to durable object storage and restoration from it. S3 is
// modeled by a directory of immutable, checksummed segment objects —
// one object per (partition, offset-range) — so archives are
// incremental, idempotent, and survive fabric restarts.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/event"
)

// ErrCorrupt reports a failed checksum or truncated archive object.
var ErrCorrupt = errors.New("store: corrupt archive object")

// Archive persists topics under a root directory, one sub-directory per
// topic, one object per archived segment:
//
//	<root>/<topic>/p<partition>/<firstOffset>-<lastOffset>.seg
//
// Object layout: u32 crc of body | body, where body is a sequence of
// event.Marshal records prefixed by their i64 offsets.
type Archive struct {
	Root string
}

// NewArchive creates (if needed) the root directory.
func NewArchive(root string) (*Archive, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Archive{Root: root}, nil
}

func (a *Archive) partDir(topic string, partition int) string {
	return filepath.Join(a.Root, topic, "p"+strconv.Itoa(partition))
}

// ArchiveTopic persists every event of the topic not yet archived. It
// returns the number of newly archived events. Calling it repeatedly is
// cheap and idempotent: each partition resumes from its high-water
// mark in the archive.
func (a *Archive) ArchiveTopic(f *broker.Fabric, topic string) (int, error) {
	meta, err := f.Ctl.Topic(topic)
	if err != nil {
		return 0, err
	}
	archived := 0
	for p := 0; p < meta.Config.Partitions; p++ {
		n, err := a.archivePartition(f, topic, p)
		if err != nil {
			return archived, err
		}
		archived += n
	}
	return archived, nil
}

func (a *Archive) archivePartition(f *broker.Fabric, topic string, partition int) (int, error) {
	dir := a.partDir(topic, partition)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	from := a.highWatermark(dir)
	end, err := f.EndOffset(topic, partition)
	if err != nil {
		return 0, err
	}
	if start, err := f.StartOffset(topic, partition); err == nil && from < start {
		from = start // records below retention are gone; archive what remains
	}
	if from >= end {
		return 0, nil
	}
	res, err := f.Fetch("", topic, partition, from, int(end-from), 0)
	if err != nil {
		return 0, err
	}
	if len(res.Events) == 0 {
		return 0, nil
	}
	first := res.Events[0].Offset
	last := res.Events[len(res.Events)-1].Offset
	body := encodeObject(res.Events)
	obj := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(obj, crc32.ChecksumIEEE(body))
	copy(obj[4:], body)
	name := filepath.Join(dir, fmt.Sprintf("%020d-%020d.seg", first, last))
	tmp := name + ".tmp"
	if err := os.WriteFile(tmp, obj, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, name); err != nil {
		return 0, err
	}
	return len(res.Events), nil
}

// highWatermark returns the offset after the last archived record.
func (a *Archive) highWatermark(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var hw int64
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		parts := strings.SplitN(strings.TrimSuffix(e.Name(), ".seg"), "-", 2)
		if len(parts) != 2 {
			continue
		}
		last, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			continue
		}
		if last+1 > hw {
			hw = last + 1
		}
	}
	return hw
}

// ReadPartition returns every archived event of a partition in offset
// order, verifying checksums.
func (a *Archive) ReadPartition(topic string, partition int) ([]event.Event, error) {
	dir := a.partDir(topic, partition)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded first offsets sort correctly
	var out []event.Event
	for _, name := range names {
		obj, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		evs, err := decodeObject(obj)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
		}
		out = append(out, evs...)
	}
	return out, nil
}

// Topics lists archived topic names.
func (a *Archive) Topics() ([]string, error) {
	entries, err := os.ReadDir(a.Root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Partitions returns the archived partition ids of a topic.
func (a *Archive) Partitions(topic string) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(a.Root, topic))
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "p") {
			if id, err := strconv.Atoi(e.Name()[1:]); err == nil {
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out, nil
}

// RestoreTopic replays an archived topic into a fabric (disaster
// recovery). The topic is created if missing; events are re-produced in
// offset order per partition, so per-key ordering survives. Restored
// offsets are newly assigned (a restore into a non-empty topic appends).
func (a *Archive) RestoreTopic(f *broker.Fabric, topic string, cfg cluster.TopicConfig) (int, error) {
	parts, err := a.Partitions(topic)
	if err != nil {
		return 0, fmt.Errorf("store: no archive for %s: %w", topic, err)
	}
	if cfg.Partitions < len(parts) {
		cfg.Partitions = len(parts)
	}
	if _, err := f.CreateTopic(topic, "", cfg); err != nil && !errors.Is(err, cluster.ErrTopicExists) {
		return 0, err
	}
	restored := 0
	for _, p := range parts {
		evs, err := a.ReadPartition(topic, p)
		if err != nil {
			return restored, err
		}
		if len(evs) == 0 {
			continue
		}
		if _, err := f.Produce("", topic, p, evs, broker.AcksLeader); err != nil {
			return restored, err
		}
		restored += len(evs)
	}
	return restored, nil
}

// ReadTier implements broker.TieredReader: serve a fetch whose offset
// fell below the broker's local log start from the archived segment
// objects — the tiered-read half of the paper's cloud-persistence
// path. Only the segment objects covering the requested range are read
// and checksummed; the budget follows Log.ReadBudgetInto semantics (at
// least one event when any is available, maxBytes <= 0 = unlimited).
func (a *Archive) ReadTier(topic string, partition int, offset int64, maxEvents, maxBytes int, dst []event.Event) ([]event.Event, error) {
	dir := a.partDir(topic, partition)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded first offsets sort correctly
	out := dst[:0]
	budget := maxBytes
	for _, name := range names {
		parts := strings.SplitN(strings.TrimSuffix(name, ".seg"), "-", 2)
		if len(parts) != 2 {
			continue
		}
		last, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || last < offset {
			continue // segment entirely below the requested range
		}
		obj, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		evs, err := decodeObject(obj)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, name, err)
		}
		for i := range evs {
			if evs[i].Offset < offset {
				continue
			}
			sz := len(evs[i].Key) + len(evs[i].Value)
			if len(out) > 0 && (len(out) >= maxEvents || (maxBytes > 0 && sz > budget)) {
				return out, nil
			}
			budget -= sz
			evs[i].Topic = topic
			evs[i].Partition = partition
			out = append(out, evs[i])
		}
		if len(out) >= maxEvents {
			return out, nil
		}
	}
	return out, nil
}

func encodeObject(evs []event.Event) []byte {
	var body []byte
	for i := range evs {
		body = binary.BigEndian.AppendUint64(body, uint64(evs[i].Offset))
		body = append(body, evs[i].Marshal()...)
	}
	return body
}

func decodeObject(obj []byte) ([]event.Event, error) {
	if len(obj) < 4 {
		return nil, errors.New("short object")
	}
	want := binary.BigEndian.Uint32(obj)
	body := obj[4:]
	if crc32.ChecksumIEEE(body) != want {
		return nil, errors.New("checksum mismatch")
	}
	var out []event.Event
	pos := 0
	for pos < len(body) {
		if len(body[pos:]) < 8 {
			return nil, errors.New("truncated offset")
		}
		off := int64(binary.BigEndian.Uint64(body[pos:]))
		pos += 8
		ev, n, err := event.Unmarshal(body[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		ev.Offset = off
		out = append(out, ev)
	}
	return out, nil
}
