package repro

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/clusternet"
	"repro/internal/event"
	"repro/internal/testbed"
	"repro/internal/wire"
)

// Allocation-regression benchmarks for the zero-allocation hot paths.
// They fail (not just report) when the steady-state allocation budget is
// exceeded, so the CI bench smoke doubles as a regression gate:
//
//	go test -bench 'Allocs' -benchmem -run '^$' .
//
// Budget: ≤2 allocs per produce of a 64-event batch (the batch arena plus
// amortized log growth) and ≤2 per fetch (the result slice plus amortized
// growth). The seed spent ~98 allocs on the same produce call.
const allocBudget = 2.0

// BenchmarkProduceAllocs measures steady-state allocations of a 64-event
// produce on a warmed fabric: routing cached, scratch pooled, one arena
// per batch.
func BenchmarkProduceAllocs(b *testing.B) {
	f := newBenchFabric(b, 2, 2)
	batch := oneKBBatch(64)
	if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(allocs, "allocs/produce")
	if allocs > allocBudget {
		b.Fatalf("produce of a 64-event batch allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchAllocs measures steady-state allocations of a 64-event
// fetch with a byte budget on a warmed fabric: cached routing plus the
// indexed, streaming log read.
func BenchmarkFetchAllocs(b *testing.B) {
	f := newBenchFabric(b, 2, 2)
	batch := oneKBBatch(64)
	for i := 0; i < 8; i++ {
		if _, err := f.Produce("", "bench", 0, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
	fetch := func() {
		res, err := f.Fetch("", "bench", 0, 0, 64, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Events) != 64 {
			b.Fatalf("fetched %d events", len(res.Events))
		}
	}
	fetch()
	allocs := testing.AllocsPerRun(100, fetch)
	b.ReportMetric(allocs, "allocs/fetch")
	if allocs > allocBudget {
		b.Fatalf("fetch of a 64-event batch allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch()
	}
}

// legacyTransport hides Direct's BufferedFetcher extension, so the
// consumer falls back to the pre-session per-fetch allocation path —
// measured alongside the session path as the regression baseline.
type legacyTransport struct{ client.Transport }

// BenchmarkConsumerPollAllocs measures steady-state allocations of a
// 64-event SDK consumer Poll through the zero-copy fetch session
// (budget ≤2: the reused result slice plus amortized growth), and
// reports the legacy non-session path for comparison.
func BenchmarkConsumerPollAllocs(b *testing.B) {
	f := newBenchFabric(b, 2, 2)
	batch := oneKBBatch(64)
	for i := 0; i < 4; i++ {
		if _, err := f.Produce("", "bench", 0, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
	mkPoll := func(t client.Transport) func() {
		c := client.NewConsumer(t, client.ConsumerConfig{Start: client.StartEarliest})
		b.Cleanup(func() { c.Close() })
		if err := c.Assign("bench", 0); err != nil {
			b.Fatal(err)
		}
		return func() {
			c.Seek("bench", 0, 0)
			evs, err := c.Poll(64)
			if err != nil {
				b.Fatal(err)
			}
			if len(evs) != 64 {
				b.Fatalf("polled %d events", len(evs))
			}
		}
	}
	poll := mkPoll(client.NewDirect(f))
	legacyPoll := mkPoll(legacyTransport{client.NewDirect(f)})
	poll()
	legacyPoll()
	allocs := testing.AllocsPerRun(100, poll)
	legacy := testing.AllocsPerRun(100, legacyPoll)
	if allocs > allocBudget {
		b.Fatalf("session poll of 64 events allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poll()
	}
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(allocs, "allocs/poll")
	b.ReportMetric(legacy, "allocs/poll_legacy")
}

// delayProxy is testbed.DelayProxy with benchmark-scoped cleanup: the
// emulated WAN link that makes the pipelining and streaming gates
// meaningful on any host (on loopback there is no latency to hide).
func delayProxy(b *testing.B, target string, oneWay time.Duration) string {
	b.Helper()
	addr, stop, err := testbed.DelayProxy(target, oneWay)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(stop)
	return addr
}

// BenchmarkRemoteProducePipelined gates the pipelined wire transport:
// the same produce workload crosses an emulated remote link (2 ms RTT)
// serially (one round trip in flight — the seed client's behavior) and
// pipelined (16 in flight on one connection, correlation-dispatched).
// The pipelined run must beat 2x the serial throughput or the benchmark
// fails; with the round trip dominated by link latency the transport
// should approach inflight-fold speedup.
func BenchmarkRemoteProducePipelined(b *testing.B) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := f.CreateTopic("rp", "", cluster.TopicConfig{Partitions: 4}); err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(f)
	srv.AllowAnonymous = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	remote := delayProxy(b, addr, time.Millisecond)
	c, err := wire.DialAnonymous(remote)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const batchEvents, inflight = 16, 16
	const serialProbe, pipeProbe = 128, 2048
	batch := oneKBBatch(batchEvents)
	produce := func(p int) error {
		_, err := c.Produce("", "rp", p, batch, broker.AcksLeader)
		return err
	}
	if err := produce(0); err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < serialProbe; i++ {
		if err := produce(i % 4); err != nil {
			b.Fatal(err)
		}
	}
	serial := float64(serialProbe) / time.Since(start).Seconds()
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < pipeProbe/inflight; i++ {
				if err := produce(w % 4); err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Failed() {
		b.FailNow()
	}
	pipelined := float64(pipeProbe) / time.Since(start).Seconds()
	if pipelined < 2*serial {
		b.Fatalf("pipelined %.0f rt/s < 2x serial %.0f rt/s over the same link", pipelined, serial)
	}
	b.SetBytes(batchEvents << 10)
	b.ResetTimer()
	b.SetParallelism(inflight)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := produce(0); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(serial*batchEvents, "serial_events/s")
	b.ReportMetric(pipelined*batchEvents, "pipelined_events/s")
	b.ReportMetric(pipelined/serial, "speedup_x")
}

// BenchmarkInstrumentationOverhead gates the observability plane's
// hot-path cost: the identical 128-event produce+fetch loop runs on
// two fabrics in the same run — one with hot-path metrics disabled
// (Fabric.SetHotPathMetrics(false): nil handle struct, logs opened
// without observers — the pre-observability baseline) and one with the
// default instrumentation (bucketed histograms + counters on produce,
// append, commit-wait, and fetch, plus 1-in-128 stage-trace sampling).
// The benchmark fails if the instrumented path costs more than 5%
// extra ns/op (median of per-pair differences over position-balanced
// interleaved pairs, so GC pauses and environment drift cancel) or if
// the instrumented side allocates more per op — observation must stay
// allocation-free.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	const batchEvents = 128
	mk := func(instrumented bool) func() {
		f := broker.NewFabric(nil)
		// Before any produce: route building resolves the metric handles
		// into each log's observer config, so the baseline fabric must
		// disable them before its logs open.
		f.SetHotPathMetrics(instrumented)
		if err := f.AddBrokers(2, 2, 8); err != nil {
			b.Fatal(err)
		}
		if _, err := f.CreateTopic("obs", "", cluster.TopicConfig{Partitions: 2, ReplicationFactor: 2}); err != nil {
			b.Fatal(err)
		}
		batch := oneKBBatch(batchEvents)
		if _, err := f.Produce("", "obs", 0, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
		return func() {
			if _, err := f.Produce("", "obs", 0, batch, broker.AcksLeader); err != nil {
				b.Fatal(err)
			}
			res, err := f.Fetch("", "obs", 0, 0, batchEvents, 1<<20)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Events) != batchEvents {
				b.Fatalf("fetched %d events", len(res.Events))
			}
		}
	}
	runOff := mk(false)
	runOn := mk(true)
	// Allocation parity: identical per-op counts — three atomic adds
	// per observation never justify an allocation. Raw malloc counters
	// rather than testing.AllocsPerRun, whose integral truncation flaps
	// when amortized log-growth allocations put both sides near a
	// boundary (e.g. 3.98 vs 4.02 reads as 3 vs 4); the two fabrics
	// share call history, so the amortized tail cancels and any real
	// per-op difference shows up as a full +1.
	mallocs := func(run func()) float64 {
		const runs = 100
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		for i := 0; i < runs; i++ {
			run()
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / runs
	}
	allocsOff := mallocs(runOff)
	allocsOn := mallocs(runOn)
	if allocsOn > allocsOff+0.5 {
		b.Fatalf("instrumented produce+fetch allocates %.2f times, baseline %.2f — instrumentation must be allocation-free", allocsOn, allocsOff)
	}
	// Timing: both fabrics' logs grow with every probe iteration and the
	// arena copies trigger GC cycles whose pauses (milliseconds against
	// ~50µs iterations) land on random iterations, so neither
	// phase-per-side means nor min-of-rounds separate a 5% effect from
	// the noise. Instead: interleave the two sides pair by pair
	// (identical heap and GC environment), alternate which side of the
	// pair runs first (the second call tends to absorb assists
	// triggered by the first), time every iteration individually, and
	// compare per-side medians — a GC pause inflates one sample, never
	// the median.
	const pairs = 512
	dOff := make([]time.Duration, pairs)
	dOn := make([]time.Duration, pairs)
	for i := 0; i < pairs; i++ {
		first, second := runOff, runOn
		tFirst, tSecond := &dOff[i], &dOn[i]
		if i%2 == 1 {
			first, second = runOn, runOff
			tFirst, tSecond = &dOn[i], &dOff[i]
		}
		start := time.Now()
		first()
		*tFirst = time.Since(start)
		start = time.Now()
		second()
		*tSecond = time.Since(start)
	}
	// The estimator is the median of per-pair differences: the two
	// sides of a pair run within microseconds of each other, so slow
	// environment drift (CPU frequency, co-tenant load) cancels exactly,
	// and a GC pause inflates one difference, never the median.
	diffs := make([]time.Duration, pairs)
	for i := range diffs {
		diffs[i] = dOn[i] - dOff[i]
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i] < diffs[j] })
	sort.Slice(dOff, func(i, j int) bool { return dOff[i] < dOff[j] })
	sort.Slice(dOn, func(i, j int) bool { return dOn[i] < dOn[j] })
	nsOff := float64(dOff[pairs/2].Nanoseconds())
	nsOn := float64(dOn[pairs/2].Nanoseconds())
	overhead := 1 + float64(diffs[pairs/2].Nanoseconds())/nsOff
	if overhead > 1.05 {
		b.Fatalf("instrumented produce+fetch %.0f ns vs baseline %.0f ns: %.1f%% overhead, budget 5%%",
			nsOn, nsOff, (overhead-1)*100)
	}
	b.SetBytes(batchEvents << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOn()
	}
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(nsOff, "baseline_ns/op")
	b.ReportMetric(nsOn, "instrumented_ns/op")
	b.ReportMetric(overhead, "overhead_x")
	b.ReportMetric(allocsOn, "allocs/op")
}

// BenchmarkWireHeaderAllocs gates the v2 header codec on the server's
// actual decode path: one full fetch header round trip — request encode
// + interned decode (the per-connection topic intern table from PR 4)
// plus response (with a 64-event dense offset run) encode+decode — must
// be allocation-free once the intern table is warm. PR 3 left exactly
// one allocation here (the decoded topic string); the interner removes
// it. The v1 JSON path for the identical headers is reported alongside
// as the regression baseline.
func BenchmarkWireHeaderAllocs(b *testing.B) {
	req := wire.FetchReq{Topic: "bench", Partition: 3, Offset: 123456, MaxEvents: 500, MaxBytes: 2 << 20}
	evs := make([]event.Event, 64)
	for i := range evs {
		evs[i].Offset = int64(1000 + i)
	}
	resp := wire.FetchResp{NumEvents: 64, HighWatermark: 1064}
	resp.SetOffsets(evs)
	op := req.V2Op()
	var reqBuf, respBuf []byte
	var rq wire.FetchReq
	var rs wire.FetchResp
	var interner wire.Interner
	run := func() {
		reqBuf = wire.AppendRequestV2(reqBuf[:0], 7, &req)
		if _, err := wire.DecodeRequestV2Interned(reqBuf, &rq, &interner); err != nil {
			b.Fatal(err)
		}
		respBuf = wire.AppendResponseV2(respBuf[:0], op, 7, &resp)
		if _, _, err := wire.DecodeResponseV2(respBuf, &rs); err != nil {
			b.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(200, run)
	if allocs > 0 {
		b.Fatalf("v2 header encode+interned decode allocates %.1f times, budget 0", allocs)
	}
	b.SetBytes(int64(len(reqBuf) + len(respBuf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(allocs, "allocs/roundtrip")
}

// BenchmarkRemoteRoundTripBytes gates the v2 protocol's allocation win
// end to end: the same header-dominated round trip (EndOffset) is
// driven over real TCP against the same in-process server through a
// v1-pinned client and a v2 client, measuring total process
// allocations (client and server side together) per op. v2 must show
// at least 2x fewer bytes per round trip than the v1 JSON-header path
// in the same run, or the benchmark fails.
func BenchmarkRemoteRoundTripBytes(b *testing.B) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := f.CreateTopic("hdr", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(f)
	srv.AllowAnonymous = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	dial := func(maxVersion int) *wire.Client {
		c, err := wire.DialOptions(addr, wire.Options{Anonymous: true, PoolSize: 1, MaxVersion: maxVersion})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	v1c, v2c := dial(wire.ProtocolV1), dial(wire.ProtocolV2)
	defer v1c.Close()
	defer v2c.Close()
	// Per-op cost is the minimum over several rounds: TotalAlloc is
	// process-wide, so background allocation (GC metadata, timer and
	// accept-loop wakeups) can only inflate a round — the minimum is
	// the clean signal, keeping the 2x gate stable on loaded CI hosts.
	bytesPerOp := func(c *wire.Client) float64 {
		const rounds, ops = 3, 2000
		for i := 0; i < 200; i++ { // warm pools and routing caches
			if _, err := c.EndOffset("hdr", 0); err != nil {
				b.Fatal(err)
			}
		}
		best := 0.0
		for r := 0; r < rounds; r++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := 0; i < ops; i++ {
				if _, err := c.EndOffset("hdr", 0); err != nil {
					b.Fatal(err)
				}
			}
			runtime.ReadMemStats(&m1)
			if got := float64(m1.TotalAlloc-m0.TotalAlloc) / ops; r == 0 || got < best {
				best = got
			}
		}
		return best
	}
	v1Bytes := bytesPerOp(v1c)
	v2Bytes := bytesPerOp(v2c)
	if 2*v2Bytes > v1Bytes {
		b.Fatalf("v2 round trip %.0f B/op vs v1 %.0f B/op: less than the required 2x reduction", v2Bytes, v1Bytes)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v2c.EndOffset("hdr", 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(v1Bytes, "v1_B/op")
	b.ReportMetric(v2Bytes, "v2_B/op")
	b.ReportMetric(v1Bytes/v2Bytes, "reduction_x")
}

// BenchmarkLeaderDirectRouting gates PR 5's tentpole: the same
// round-trip-bound produce workload runs against a 3-broker clusternet
// fabric two ways over emulated 2 ms links. Leader-direct: the client
// bootstraps metadata from one broker and dials each partition's
// leader through that broker's own link (one hop per produce).
// Proxy-through-one-listener: every request funnels through a single
// all-partition listener behind a forwarding hop (two chained links) —
// what reaching a partition leader through a gateway broker costs.
// Leader-direct must beat 1.5x the proxied throughput in the same run,
// and not one request may misroute, or the benchmark fails.
func BenchmarkLeaderDirectRouting(b *testing.B) {
	// The identical fixture backs octopus-bench -cluster, so the
	// operator-visible comparison is the one CI gates.
	fx, err := testbed.NewClusterRoutingFixture(3, 6, 40, 16, 1024, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fx.Close)
	if _, err := fx.Run(fx.Direct); err != nil { // warm: dials every leader link once
		b.Fatal(err)
	}
	proxiedThru, err := fx.Run(fx.Proxied)
	if err != nil {
		b.Fatal(err)
	}
	directThru, err := fx.Run(fx.Direct)
	if err != nil {
		b.Fatal(err)
	}
	if directThru < 1.5*proxiedThru {
		b.Fatalf("leader-direct %.0f ev/s < 1.5x single-listener proxy %.0f ev/s over the same links", directThru, proxiedThru)
	}
	if n := fx.Cluster.Misroutes(); n != 0 {
		b.Fatalf("leader-direct routing misrouted %d requests, want 0", n)
	}
	b.SetBytes(int64(len(fx.Batch)) << 10)
	b.ResetTimer()
	b.SetParallelism(fx.Workers)
	var rr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		p := int(rr.Add(1)) % fx.Partitions
		for pb.Next() {
			if _, err := fx.Direct.Produce("", fx.Topic, p, fx.Batch, broker.AcksLeader); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(proxiedThru, "proxied_events/s")
	b.ReportMetric(directThru, "direct_events/s")
	b.ReportMetric(directThru/proxiedThru, "speedup_x")
}

// BenchmarkManyConnections gates PR 6's tentpole: Conns connections
// each consuming 64 partitions run once over per-partition streams
// (PR 4 — one server pump goroutine per partition per connection) and
// once over multiplexed fetch sessions (one pump per connection, one
// shared credit window), in the same run. Gates: the session path adds
// at most 2 goroutines per connection for all 64 subscriptions; the
// stream path's total per-connection footprint is at least 2x the
// session path's; and session allocs/event are no worse than the PR 4
// streaming baseline (small tolerance for process-wide noise). The
// fixture's teardown doubles as a goroutine-leak gate on both paths.
func BenchmarkManyConnections(b *testing.B) {
	// The identical fixture backs octopus-bench -connections, so the
	// operator-visible comparison is the one CI gates.
	const conns, parts, perPart, eventSize = 16, 64, 200, 100
	fx, err := testbed.NewConnScaleFixture(conns, parts, perPart, eventSize)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(fx.Close)
	stream, err := fx.Run(false)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := fx.Run(true)
	if err != nil {
		b.Fatal(err)
	}
	if sess.ServingPerConn > 2 {
		b.Fatalf("sessioned fetch adds %.2f goroutines/connection serving %d partitions, budget 2",
			sess.ServingPerConn, parts)
	}
	if stream.GoroutinesPerConn < 2*sess.GoroutinesPerConn {
		b.Fatalf("per-partition streams %.1f goroutines/connection < 2x sessioned %.1f at %d partitions",
			stream.GoroutinesPerConn, sess.GoroutinesPerConn, parts)
	}
	if sess.AllocsPerEvent > 1.1*stream.AllocsPerEvent {
		b.Fatalf("sessioned fetch %.2f allocs/event vs streaming baseline %.2f in the same run",
			sess.AllocsPerEvent, stream.AllocsPerEvent)
	}

	// Timed loop: steady-state sessioned consumption of one partition.
	c, err := wire.DialOptions(fx.Addr(), wire.Options{Anonymous: true, PoolSize: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var buf broker.FetchBuffer
	b.SetBytes(eventSize * 100)
	b.ResetTimer()
	var off int64
	for i := 0; i < b.N; i++ {
		res, err := c.FetchBuffered("", "cs", 0, off, 100, 1<<20, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if off = res.Events[len(res.Events)-1].Offset + 1; off >= perPart {
			off = 0
		}
	}
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(sess.GoroutinesPerConn, "sess_goroutines/conn")
	b.ReportMetric(stream.GoroutinesPerConn, "stream_goroutines/conn")
	b.ReportMetric(sess.AllocsPerEvent, "sess_allocs/event")
	b.ReportMetric(stream.AllocsPerEvent, "stream_allocs/event")
	b.ReportMetric(stream.GoroutinesPerConn/sess.GoroutinesPerConn, "goroutine_reduction_x")
}

// BenchmarkReplicatedProduce gates PR 8's tentpole cost: on a 3-broker
// RF-3 clusternet fabric with every broker behind an emulated WAN link
// (testbed.DelayProxy), an acks=all produce — which commits only after
// the follower brokers replicate the batch over OpReplicaFetch and ack
// — must cost at most 2.5x an acks=leader produce in the same run.
// The budget is what the long-poll design predicts: followers park on
// the leader's tail waiter, so a produce pays one client→leader round
// trip plus roughly one follower link round trip (push to the parked
// fetch, then the OpReplicaAck that advances the high watermark), not
// a fetch-interval of idle waiting.
func BenchmarkReplicatedProduce(b *testing.B) {
	const oneWay = 2 * time.Millisecond
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(3, 2, 8); err != nil {
		b.Fatal(err)
	}
	f.MinInsyncReplicas = 2
	var proxyStops []func()
	cnet, err := clusternet.Serve(f, clusternet.Options{
		AllowAnonymous: true,
		Replication:    true,
		Advertise: func(id int, bound string) (string, error) {
			addr, stop, perr := testbed.DelayProxy(bound, oneWay)
			if perr != nil {
				return "", perr
			}
			proxyStops = append(proxyStops, stop)
			return addr, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cnet.Close()
		for i := len(proxyStops) - 1; i >= 0; i-- {
			proxyStops[i]()
		}
	})
	if _, err := f.CreateTopic("rp", "", cluster.TopicConfig{Partitions: 1, ReplicationFactor: 3}); err != nil {
		b.Fatal(err)
	}
	c, err := wire.DialOptions(cnet.Addr(0), wire.Options{Anonymous: true})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	batch := oneKBBatch(16)
	// Warm both paths: routing cached, follower fetch loops caught up
	// and parked on the leader's tail waiter.
	for i := 0; i < 3; i++ {
		if _, err := c.Produce("", "rp", 0, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Produce("", "rp", 0, batch, broker.AcksAll); err != nil {
			b.Fatal(err)
		}
	}
	const rounds = 25
	measure := func(acks broker.Acks) time.Duration {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if _, err := c.Produce("", "rp", 0, batch, acks); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / rounds
	}
	leaderLat := measure(broker.AcksLeader)
	allLat := measure(broker.AcksAll)
	if allLat > leaderLat*5/2 {
		b.Fatalf("acks=all %v/produce > 2.5x acks=leader %v/produce over the same %v links",
			allLat, leaderLat, oneWay)
	}
	st, ok := f.ReplicaStatusFor("rp", 0)
	if !ok || st.HighWatermark != st.LogEnd {
		b.Fatalf("high watermark %d lags leader log end %d after the acks=all run", st.HighWatermark, st.LogEnd)
	}

	// Timed loop: steady-state replicated acks=all produce.
	b.SetBytes(16 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Produce("", "rp", 0, batch, broker.AcksAll); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(float64(leaderLat.Microseconds()), "leader_us/produce")
	b.ReportMetric(float64(allLat.Microseconds()), "all_us/produce")
	b.ReportMetric(float64(allLat)/float64(leaderLat), "all_vs_leader_x")
}

// BenchmarkUnmarshalBatchAllocs pins the fetch-side wire decode: one
// events slice per batch, zero per-field copies.
func BenchmarkUnmarshalBatchAllocs(b *testing.B) {
	evs := oneKBBatch(64)
	payload := event.AppendBatchMarshal(nil, evs)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := event.UnmarshalBatch(payload, 64); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(allocs, "allocs/decode")
	if allocs > allocBudget {
		b.Fatalf("batch decode allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := event.UnmarshalBatch(payload, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingFetch gates PR 4's tentpole: the same consume
// workload — a preloaded single-partition backlog drained through the
// SDK consumer — crosses an emulated remote link (2 ms RTT) through the
// PR 2/3 pipelined request/response fetcher (streaming masked out of
// negotiation) and through a negotiated fetch stream (credit-based
// server push). Request/response pays one round trip per batch however
// well it pipelines; the stream pays round trips only for the open and
// the occasional credit grant, so it must beat 2x the pipelined
// throughput in the same run or the benchmark fails.
func BenchmarkStreamingFetch(b *testing.B) {
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		b.Fatal(err)
	}
	if _, err := f.CreateTopic("sf", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		b.Fatal(err)
	}
	const total, batch = 24000, 400
	evs := make([]event.Event, batch)
	for i := range evs {
		evs[i] = event.Event{Value: make([]byte, 200)}
	}
	for n := 0; n < total; n += batch {
		if _, err := f.Produce("", "sf", 0, evs, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
	srv := wire.NewServer(f)
	srv.AllowAnonymous = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	remote := delayProxy(b, addr, time.Millisecond)
	// Both dials disable PR 6 sessions: this gate compares the PR 2
	// pipelined fetcher against the PR 4 per-partition stream, so each
	// side is pinned to exactly its transport.
	dial := func(disableStreaming bool) *wire.Client {
		c, err := wire.DialOptions(remote, wire.Options{
			Anonymous: true, PoolSize: 1,
			DisableStreaming: disableStreaming, DisableSessionFetch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	// consume drains the full backlog through the SDK consumer and
	// returns events/s. Prefetch on for both sides: the baseline is the
	// PR 2 double-buffered pipelined fetcher at its best.
	consume := func(c *wire.Client) float64 {
		cons := client.NewConsumer(c, client.ConsumerConfig{
			Start: client.StartEarliest, Prefetch: true,
			MaxPollEvents: 500, PollWait: 50 * time.Millisecond,
		})
		defer cons.Close()
		if err := cons.Assign("sf", 0); err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		got := 0
		for got < total {
			polled, err := cons.Poll(500)
			if err != nil {
				b.Fatal(err)
			}
			got += len(polled)
		}
		return float64(total) / time.Since(start).Seconds()
	}
	pipeClient, streamClient := dial(true), dial(false)
	defer pipeClient.Close()
	defer streamClient.Close()
	if feats := streamClient.Features(); feats&wire.FeatStreamFetch == 0 {
		b.Fatal("streaming fetch not negotiated")
	}
	if feats := pipeClient.Features(); feats&wire.FeatStreamFetch != 0 {
		b.Fatal("baseline client negotiated streaming")
	}
	pipelined := consume(pipeClient)
	streamed := consume(streamClient)
	if streamed < 2*pipelined {
		b.Fatalf("streaming fetch %.0f events/s < 2x pipelined %.0f events/s over the same link", streamed, pipelined)
	}
	b.SetBytes(200 * 500)
	b.ResetTimer()
	// Timed loop: steady-state streaming polls over the same link,
	// re-seeking to the backlog start when it drains.
	cons := client.NewConsumer(streamClient, client.ConsumerConfig{
		Start: client.StartEarliest, MaxPollEvents: 500, PollWait: 50 * time.Millisecond,
	})
	defer cons.Close()
	if err := cons.Assign("sf", 0); err != nil {
		b.Fatal(err)
	}
	consumed := 0
	for i := 0; i < b.N; i++ {
		polled, err := cons.Poll(500)
		if err != nil {
			b.Fatal(err)
		}
		consumed += len(polled)
		if consumed >= total {
			consumed = 0
			cons.Seek("sf", 0, 0)
		}
	}
	b.StopTimer()
	// Reported after the timed loop: ResetTimer deletes user metrics.
	b.ReportMetric(pipelined, "pipelined_events/s")
	b.ReportMetric(streamed, "streamed_events/s")
	b.ReportMetric(streamed/pipelined, "speedup_x")
}
