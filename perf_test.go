package repro

import (
	"testing"

	"repro/internal/broker"
	"repro/internal/event"
)

// Allocation-regression benchmarks for the zero-allocation hot paths.
// They fail (not just report) when the steady-state allocation budget is
// exceeded, so the CI bench smoke doubles as a regression gate:
//
//	go test -bench 'Allocs' -benchmem -run '^$' .
//
// Budget: ≤2 allocs per produce of a 64-event batch (the batch arena plus
// amortized log growth) and ≤2 per fetch (the result slice plus amortized
// growth). The seed spent ~98 allocs on the same produce call.
const allocBudget = 2.0

// BenchmarkProduceAllocs measures steady-state allocations of a 64-event
// produce on a warmed fabric: routing cached, scratch pooled, one arena
// per batch.
func BenchmarkProduceAllocs(b *testing.B) {
	f := newBenchFabric(b, 2, 2)
	batch := oneKBBatch(64)
	if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(allocs, "allocs/produce")
	if allocs > allocBudget {
		b.Fatalf("produce of a 64-event batch allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Produce("", "bench", -1, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchAllocs measures steady-state allocations of a 64-event
// fetch with a byte budget on a warmed fabric: cached routing plus the
// indexed, streaming log read.
func BenchmarkFetchAllocs(b *testing.B) {
	f := newBenchFabric(b, 2, 2)
	batch := oneKBBatch(64)
	for i := 0; i < 8; i++ {
		if _, err := f.Produce("", "bench", 0, batch, broker.AcksLeader); err != nil {
			b.Fatal(err)
		}
	}
	fetch := func() {
		res, err := f.Fetch("", "bench", 0, 0, 64, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Events) != 64 {
			b.Fatalf("fetched %d events", len(res.Events))
		}
	}
	fetch()
	allocs := testing.AllocsPerRun(100, fetch)
	b.ReportMetric(allocs, "allocs/fetch")
	if allocs > allocBudget {
		b.Fatalf("fetch of a 64-event batch allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch()
	}
}

// BenchmarkUnmarshalBatchAllocs pins the fetch-side wire decode: one
// events slice per batch, zero per-field copies.
func BenchmarkUnmarshalBatchAllocs(b *testing.B) {
	evs := oneKBBatch(64)
	payload := event.AppendBatchMarshal(nil, evs)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := event.UnmarshalBatch(payload, 64); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(allocs, "allocs/decode")
	if allocs > allocBudget {
		b.Fatalf("batch decode allocates %.1f times, budget %.0f", allocs, allocBudget)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := event.UnmarshalBatch(payload, 64); err != nil {
			b.Fatal(err)
		}
	}
}
