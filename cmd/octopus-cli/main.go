// Command octopus-cli is a minimal command-line client for an Octopus
// deployment's wire endpoint: produce, consume, and offset inspection
// for quick experiments and debugging.
//
//	octopus-cli -addr 127.0.0.1:9092 -key AKIA... -secret ... produce -topic t -value '{"x":1}'
//	octopus-cli -addr 127.0.0.1:9092 -anonymous consume -topic t -from earliest -max 10
//	octopus-cli -addr 127.0.0.1:9092 -anonymous offsets -topic t
//	octopus-cli -addr 127.0.0.1:9092 -anonymous metadata
//	octopus-cli -addr 127.0.0.1:9092 -anonymous isr -topic t
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9092", "wire endpoint address")
	key := flag.String("key", "", "access key id")
	secret := flag.String("secret", "", "secret access key")
	anonymous := flag.Bool("anonymous", false, "connect without credentials")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: octopus-cli [flags] produce|consume|offsets|metadata|isr [subflags]")
		os.Exit(2)
	}

	var (
		conn *wire.Client
		err  error
	)
	if *anonymous {
		conn, err = wire.DialAnonymous(*addr)
	} else {
		conn, err = wire.Dial(*addr, *key, *secret)
	}
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "connected to %s (wire protocol v%d)\n", *addr, conn.ProtocolVersion())

	switch args[0] {
	case "produce":
		produce(conn, args[1:])
	case "consume":
		consume(conn, args[1:])
	case "offsets":
		offsets(conn, args[1:])
	case "metadata":
		metadata(conn, args[1:])
	case "isr":
		isr(conn, args[1:])
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// metadata prints the cluster metadata document — brokers (id, address,
// liveness), topics and per-partition leadership — from the OpMetadata
// path, the same document the client's leader-direct router routes by.
func metadata(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("metadata", flag.ExitOnError)
	topic := fs.String("topic", "", "restrict to one topic (default: all)")
	_ = fs.Parse(args)
	var topics []string
	if *topic != "" {
		topics = append(topics, *topic)
	}
	meta, err := conn.ClusterMetadata(topics...)
	if err != nil {
		log.Fatalf("metadata: %v (the server may predate FeatClusterMeta)", err)
	}
	fmt.Printf("metadata epoch %d, leader-direct routing %v\n", meta.Epoch, conn.RouterEnabled())
	fmt.Printf("brokers (%d):\n", len(meta.Brokers))
	for _, br := range meta.Brokers {
		state := "up"
		if !br.Up {
			state = "down"
		}
		addr := br.Addr
		if addr == "" {
			addr = "-"
		}
		fmt.Printf("  broker %-3d %-24s %s\n", br.ID, addr, state)
	}
	fmt.Printf("topics (%d):\n", len(meta.Topics))
	for _, t := range meta.Topics {
		fmt.Printf("  %s (%d partitions)\n", t.Name, len(t.Partitions))
		for i, p := range t.Partitions {
			leader := fmt.Sprintf("broker-%d", p.Leader)
			if p.Leader < 0 {
				leader = "NONE"
			}
			fmt.Printf("    partition %d: leader=%s replicas=%v isr=%v\n", i, leader, p.Replicas, p.ISR)
		}
	}
}

// isr prints the metadata document's trailing replication section —
// per-partition leadership, in-sync replica set, leader epoch, high
// watermark, and each follower's replication lag. Partitions the
// replication subsystem has not tracked yet (no acks=all produce or
// replica fetch) are listed without replication state.
func isr(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("isr", flag.ExitOnError)
	topic := fs.String("topic", "", "restrict to one topic (default: all)")
	_ = fs.Parse(args)
	var topics []string
	if *topic != "" {
		topics = append(topics, *topic)
	}
	meta, err := conn.ClusterMetadata(topics...)
	if err != nil {
		log.Fatalf("metadata: %v (the server may predate FeatClusterMeta)", err)
	}
	if meta.Replication == nil {
		log.Fatal("no replication section: the cluster serves without the replication subsystem")
	}
	tracked := make(map[string]map[int]wire.PartitionReplication)
	for _, t := range meta.Replication.Topics {
		m := make(map[int]wire.PartitionReplication, len(t.Partitions))
		for _, p := range t.Partitions {
			m[p.ID] = p
		}
		tracked[t.Name] = m
	}
	for _, t := range meta.Topics {
		fmt.Printf("%s (%d partitions)\n", t.Name, len(t.Partitions))
		for i, p := range t.Partitions {
			leader := fmt.Sprintf("broker-%d", p.Leader)
			if p.Leader < 0 {
				leader = "NONE"
			}
			fmt.Printf("  partition %d: leader=%s replicas=%v isr=%v", i, leader, p.Replicas, p.ISR)
			rp, ok := tracked[t.Name][i]
			if !ok {
				fmt.Printf(" (replication untracked)\n")
				continue
			}
			fmt.Printf(" epoch=%d hw=%d leo=%d\n", rp.LeaderEpoch, rp.HighWatermark, rp.LogEnd)
			for _, fo := range rp.Followers {
				fmt.Printf("    follower broker-%d: leo=%d lag=%d\n", fo.Broker, fo.LogEnd, rp.LogEnd-fo.LogEnd)
			}
		}
	}
}

func produce(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("produce", flag.ExitOnError)
	topic := fs.String("topic", "", "topic to publish to")
	keyStr := fs.String("key", "", "event key")
	value := fs.String("value", "", "event payload")
	acks := fs.Int("acks", 1, "acknowledgment level: 0, 1, -1 (all)")
	count := fs.Int("count", 1, "publish the event this many times")
	_ = fs.Parse(args)
	if *topic == "" || *value == "" {
		log.Fatal("produce needs -topic and -value")
	}
	var k []byte
	if *keyStr != "" {
		k = []byte(*keyStr)
	}
	evs := make([]event.Event, *count)
	for i := range evs {
		evs[i] = event.Event{Key: k, Value: []byte(*value)}
	}
	off, err := conn.Produce("", *topic, -1, evs, broker.Acks(*acks))
	if err != nil {
		log.Fatalf("produce: %v", err)
	}
	fmt.Printf("published %d event(s), base offset %d\n", *count, off)
}

func consume(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("consume", flag.ExitOnError)
	topic := fs.String("topic", "", "topic to consume")
	from := fs.String("from", "earliest", "earliest | latest")
	max := fs.Int("max", 10, "stop after this many events")
	wait := fs.Duration("wait", 2*time.Second, "how long to wait for events")
	_ = fs.Parse(args)
	if *topic == "" {
		log.Fatal("consume needs -topic")
	}
	start := client.StartEarliest
	if *from == "latest" {
		start = client.StartLatest
	}
	c := client.NewConsumer(conn, client.ConsumerConfig{Start: start})
	defer c.Close()
	meta, err := conn.TopicMeta(*topic)
	if err != nil {
		log.Fatalf("meta: %v", err)
	}
	for p := 0; p < meta.Config.Partitions; p++ {
		if err := c.Assign(*topic, p); err != nil {
			log.Fatalf("assign: %v", err)
		}
	}
	got := 0
	deadline := time.Now().Add(*wait)
	for got < *max && time.Now().Before(deadline) {
		evs, err := c.Poll(*max - got)
		if err != nil {
			log.Fatalf("poll: %v", err)
		}
		for _, ev := range evs {
			fmt.Printf("%s/%d@%d key=%q %s\n", ev.Topic, ev.Partition, ev.Offset, ev.Key, ev.Value)
			got++
		}
		if len(evs) == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	fmt.Printf("consumed %d event(s)\n", got)
}

func offsets(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("offsets", flag.ExitOnError)
	topic := fs.String("topic", "", "topic to inspect")
	_ = fs.Parse(args)
	if *topic == "" {
		log.Fatal("offsets needs -topic")
	}
	meta, err := conn.TopicMeta(*topic)
	if err != nil {
		log.Fatalf("meta: %v", err)
	}
	fmt.Printf("topic %s: %d partitions, rf=%d\n", *topic, meta.Config.Partitions, meta.Config.ReplicationFactor)
	for p := 0; p < meta.Config.Partitions; p++ {
		start, err := conn.StartOffset(*topic, p)
		if err != nil {
			log.Fatalf("start offset: %v", err)
		}
		end, err := conn.EndOffset(*topic, p)
		if err != nil {
			log.Fatalf("end offset: %v", err)
		}
		fmt.Printf("  partition %d: offsets [%d, %d) leader=broker-%d\n", p, start, end, meta.Partitions[p].Leader)
	}
}
