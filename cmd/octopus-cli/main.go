// Command octopus-cli is a minimal command-line client for an Octopus
// deployment's wire endpoint: produce, consume, and offset inspection
// for quick experiments and debugging.
//
//	octopus-cli -addr 127.0.0.1:9092 -key AKIA... -secret ... produce -topic t -value '{"x":1}'
//	octopus-cli -addr 127.0.0.1:9092 -anonymous consume -topic t -from earliest -max 10
//	octopus-cli -addr 127.0.0.1:9092 -anonymous offsets -topic t
//	octopus-cli -addr 127.0.0.1:9092 -anonymous metadata
//	octopus-cli -addr 127.0.0.1:9092 -anonymous isr -topic t
//	octopus-cli -addr 127.0.0.1:9092 -anonymous stats -watch 2s
//	octopus-cli -addr 127.0.0.1:9092 -anonymous trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9092", "wire endpoint address")
	key := flag.String("key", "", "access key id")
	secret := flag.String("secret", "", "secret access key")
	anonymous := flag.Bool("anonymous", false, "connect without credentials")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: octopus-cli [flags] produce|consume|offsets|metadata|isr|stats|trace [subflags]")
		os.Exit(2)
	}

	var (
		conn *wire.Client
		err  error
	)
	if *anonymous {
		conn, err = wire.DialAnonymous(*addr)
	} else {
		conn, err = wire.Dial(*addr, *key, *secret)
	}
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(os.Stderr, "connected to %s (wire protocol v%d)\n", *addr, conn.ProtocolVersion())

	switch args[0] {
	case "produce":
		produce(conn, args[1:])
	case "consume":
		consume(conn, args[1:])
	case "offsets":
		offsets(conn, args[1:])
	case "metadata":
		metadata(conn, args[1:])
	case "isr":
		isr(conn, args[1:])
	case "stats":
		stats(conn, args[1:])
	case "trace":
		traceCmd(conn, args[1:])
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// metadata prints the cluster metadata document — brokers (id, address,
// liveness), topics and per-partition leadership — from the OpMetadata
// path, the same document the client's leader-direct router routes by.
func metadata(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("metadata", flag.ExitOnError)
	topic := fs.String("topic", "", "restrict to one topic (default: all)")
	_ = fs.Parse(args)
	var topics []string
	if *topic != "" {
		topics = append(topics, *topic)
	}
	meta, err := conn.ClusterMetadata(topics...)
	if err != nil {
		log.Fatalf("metadata: %v (the server may predate FeatClusterMeta)", err)
	}
	fmt.Printf("metadata epoch %d, leader-direct routing %v\n", meta.Epoch, conn.RouterEnabled())
	fmt.Printf("brokers (%d):\n", len(meta.Brokers))
	for _, br := range meta.Brokers {
		state := "up"
		if !br.Up {
			state = "down"
		}
		addr := br.Addr
		if addr == "" {
			addr = "-"
		}
		fmt.Printf("  broker %-3d %-24s %s\n", br.ID, addr, state)
	}
	fmt.Printf("topics (%d):\n", len(meta.Topics))
	for _, t := range meta.Topics {
		fmt.Printf("  %s (%d partitions)\n", t.Name, len(t.Partitions))
		for i, p := range t.Partitions {
			leader := fmt.Sprintf("broker-%d", p.Leader)
			if p.Leader < 0 {
				leader = "NONE"
			}
			fmt.Printf("    partition %d: leader=%s replicas=%v isr=%v\n", i, leader, p.Replicas, p.ISR)
		}
	}
}

// isr prints the metadata document's trailing replication section —
// per-partition leadership, in-sync replica set, leader epoch, high
// watermark, and each follower's replication lag. Partitions the
// replication subsystem has not tracked yet (no acks=all produce or
// replica fetch) are listed without replication state.
func isr(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("isr", flag.ExitOnError)
	topic := fs.String("topic", "", "restrict to one topic (default: all)")
	_ = fs.Parse(args)
	var topics []string
	if *topic != "" {
		topics = append(topics, *topic)
	}
	meta, err := conn.ClusterMetadata(topics...)
	if err != nil {
		log.Fatalf("metadata: %v (the server may predate FeatClusterMeta)", err)
	}
	if meta.Replication == nil {
		log.Fatal("no replication section: the cluster serves without the replication subsystem")
	}
	tracked := make(map[string]map[int]wire.PartitionReplication)
	for _, t := range meta.Replication.Topics {
		m := make(map[int]wire.PartitionReplication, len(t.Partitions))
		for _, p := range t.Partitions {
			m[p.ID] = p
		}
		tracked[t.Name] = m
	}
	for _, t := range meta.Topics {
		fmt.Printf("%s (%d partitions)\n", t.Name, len(t.Partitions))
		for i, p := range t.Partitions {
			leader := fmt.Sprintf("broker-%d", p.Leader)
			if p.Leader < 0 {
				leader = "NONE"
			}
			fmt.Printf("  partition %d: leader=%s replicas=%v isr=%v", i, leader, p.Replicas, p.ISR)
			rp, ok := tracked[t.Name][i]
			if !ok {
				fmt.Printf(" (replication untracked)\n")
				continue
			}
			fmt.Printf(" epoch=%d hw=%d leo=%d\n", rp.LeaderEpoch, rp.HighWatermark, rp.LogEnd)
			for _, fo := range rp.Followers {
				fmt.Printf("    follower broker-%d: leo=%d lag=%d\n", fo.Broker, fo.LogEnd, rp.LogEnd-fo.LogEnd)
			}
		}
	}
}

// fetchStats scrapes a broker's OpStats snapshot: the control
// connection by default, or a specific broker's data-plane address
// with -at — any broker answers for itself.
func fetchStats(conn *wire.Client, at string) (*wire.StatsResp, error) {
	if at != "" {
		return conn.StatsAt(at)
	}
	return conn.Stats()
}

// histVal renders one histogram quantile: nanosecond metrics as
// durations, everything else (batch sizes, byte counts) as plain
// numbers.
func histVal(name string, v float64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(int64(v)).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.0f", v)
}

// stats prints a broker's observability snapshot — counters, gauges,
// and latency/size histograms with client-side quantiles — scraped
// over the wire connection (OpStats). With -watch it re-scrapes until
// interrupted.
func stats(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	at := fs.String("at", "", "scrape this broker address instead of the control connection")
	watch := fs.Duration("watch", 0, "re-scrape at this interval until interrupted (0: once)")
	_ = fs.Parse(args)
	for {
		st, err := fetchStats(conn, *at)
		if err != nil {
			log.Fatalf("stats: %v (the server may predate FeatStats)", err)
		}
		printStats(st)
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

func printStats(st *wire.StatsResp) {
	broker := fmt.Sprintf("broker %d", st.BrokerID)
	if st.BrokerID < 0 {
		broker = "unscoped listener"
	}
	fmt.Printf("%s @ %s\n", broker, time.Now().Format(time.RFC3339))
	sort.Slice(st.Counters, func(i, j int) bool { return st.Counters[i].Name < st.Counters[j].Name })
	sort.Slice(st.Gauges, func(i, j int) bool { return st.Gauges[i].Name < st.Gauges[j].Name })
	sort.Slice(st.Hists, func(i, j int) bool { return st.Hists[i].Name < st.Hists[j].Name })
	if len(st.Counters) > 0 {
		fmt.Println("counters:")
		for _, e := range st.Counters {
			fmt.Printf("  %-36s %d\n", e.Name, e.Value)
		}
	}
	if len(st.Gauges) > 0 {
		fmt.Println("gauges:")
		for _, e := range st.Gauges {
			fmt.Printf("  %-36s %d\n", e.Name, e.Value)
		}
	}
	if len(st.Hists) > 0 {
		fmt.Println("histograms:")
		for i := range st.Hists {
			h := &st.Hists[i]
			if h.Count == 0 {
				continue
			}
			mean := float64(h.Sum) / float64(h.Count)
			fmt.Printf("  %-36s n=%-8d mean=%-10s p50=%-10s p99=%s\n",
				h.Name, h.Count, histVal(h.Name, mean),
				histVal(h.Name, h.Quantile(0.5)), histVal(h.Name, h.Quantile(0.99)))
		}
	}
	for _, s := range st.Summaries {
		fmt.Printf("  %-36s n=%-8d mean=%.2fms p50=%.2fms p99=%.2fms\n",
			s.Name, s.Count, s.MeanMs, s.P50Ms, s.P99Ms)
	}
}

// traceCmd prints the produce stage-trace breakdown: for every stage
// the server declares, the p50/p99/max latency across the sampled
// produces in the broker's trace ring, then the most recent raw
// samples.
func traceCmd(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	at := fs.String("at", "", "scrape this broker address instead of the control connection")
	recent := fs.Int("n", 5, "also print this many most-recent sampled produces")
	_ = fs.Parse(args)
	st, err := fetchStats(conn, *at)
	if err != nil {
		log.Fatalf("trace: %v (the server may predate FeatStats)", err)
	}
	if len(st.TraceStages) == 0 || st.TraceEvery == 0 {
		log.Fatal("no stage tracing on this broker")
	}
	fmt.Printf("produce stage tracing: 1-in-%d sampled, %d sampled lifetime, %d in ring\n",
		st.TraceEvery, st.TraceSampled, len(st.Traces))
	for si, name := range st.TraceStages {
		var ds []int64
		for _, tr := range st.Traces {
			// A zero stage did not run for that produce (e.g. no
			// replication wait under acks=1) — excluded from quantiles.
			if si < len(tr.StageNs) && tr.StageNs[si] > 0 {
				ds = append(ds, tr.StageNs[si])
			}
		}
		if len(ds) == 0 {
			fmt.Printf("  %-16s (no samples)\n", name)
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		p50 := ds[len(ds)/2]
		p99 := ds[(len(ds)-1)*99/100]
		max := ds[len(ds)-1]
		fmt.Printf("  %-16s n=%-5d p50=%-10v p99=%-10v max=%v\n", name, len(ds),
			time.Duration(p50).Round(time.Microsecond),
			time.Duration(p99).Round(time.Microsecond),
			time.Duration(max).Round(time.Microsecond))
	}
	if *recent > 0 && len(st.Traces) > 0 {
		n := *recent
		if n > len(st.Traces) {
			n = len(st.Traces)
		}
		fmt.Printf("last %d sampled produces:\n", n)
		for _, tr := range st.Traces[len(st.Traces)-n:] {
			fmt.Printf("  %s events=%d acks=%d", time.Unix(0, tr.StartUnixNano).Format("15:04:05.000000"), tr.Events, tr.Acks)
			for si, d := range tr.StageNs {
				if si < len(st.TraceStages) {
					fmt.Printf(" %s=%v", st.TraceStages[si], time.Duration(d).Round(time.Microsecond))
				}
			}
			fmt.Println()
		}
	}
}

func produce(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("produce", flag.ExitOnError)
	topic := fs.String("topic", "", "topic to publish to")
	keyStr := fs.String("key", "", "event key")
	value := fs.String("value", "", "event payload")
	acks := fs.Int("acks", 1, "acknowledgment level: 0, 1, -1 (all)")
	count := fs.Int("count", 1, "publish the event this many times")
	_ = fs.Parse(args)
	if *topic == "" || *value == "" {
		log.Fatal("produce needs -topic and -value")
	}
	var k []byte
	if *keyStr != "" {
		k = []byte(*keyStr)
	}
	evs := make([]event.Event, *count)
	for i := range evs {
		evs[i] = event.Event{Key: k, Value: []byte(*value)}
	}
	off, err := conn.Produce("", *topic, -1, evs, broker.Acks(*acks))
	if err != nil {
		log.Fatalf("produce: %v", err)
	}
	fmt.Printf("published %d event(s), base offset %d\n", *count, off)
}

func consume(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("consume", flag.ExitOnError)
	topic := fs.String("topic", "", "topic to consume")
	from := fs.String("from", "earliest", "earliest | latest")
	max := fs.Int("max", 10, "stop after this many events")
	wait := fs.Duration("wait", 2*time.Second, "how long to wait for events")
	_ = fs.Parse(args)
	if *topic == "" {
		log.Fatal("consume needs -topic")
	}
	start := client.StartEarliest
	if *from == "latest" {
		start = client.StartLatest
	}
	c := client.NewConsumer(conn, client.ConsumerConfig{Start: start})
	defer c.Close()
	meta, err := conn.TopicMeta(*topic)
	if err != nil {
		log.Fatalf("meta: %v", err)
	}
	for p := 0; p < meta.Config.Partitions; p++ {
		if err := c.Assign(*topic, p); err != nil {
			log.Fatalf("assign: %v", err)
		}
	}
	got := 0
	deadline := time.Now().Add(*wait)
	for got < *max && time.Now().Before(deadline) {
		evs, err := c.Poll(*max - got)
		if err != nil {
			log.Fatalf("poll: %v", err)
		}
		for _, ev := range evs {
			fmt.Printf("%s/%d@%d key=%q %s\n", ev.Topic, ev.Partition, ev.Offset, ev.Key, ev.Value)
			got++
		}
		if len(evs) == 0 {
			time.Sleep(50 * time.Millisecond)
		}
	}
	fmt.Printf("consumed %d event(s)\n", got)
}

func offsets(conn *wire.Client, args []string) {
	fs := flag.NewFlagSet("offsets", flag.ExitOnError)
	topic := fs.String("topic", "", "topic to inspect")
	_ = fs.Parse(args)
	if *topic == "" {
		log.Fatal("offsets needs -topic")
	}
	meta, err := conn.TopicMeta(*topic)
	if err != nil {
		log.Fatalf("meta: %v", err)
	}
	fmt.Printf("topic %s: %d partitions, rf=%d\n", *topic, meta.Config.Partitions, meta.Config.ReplicationFactor)
	for p := 0; p < meta.Config.Partitions; p++ {
		start, err := conn.StartOffset(*topic, p)
		if err != nil {
			log.Fatalf("start offset: %v", err)
		}
		end, err := conn.EndOffset(*topic, p)
		if err != nil {
			log.Fatalf("end offset: %v", err)
		}
		fmt.Printf("  partition %d: offsets [%d, %d) leader=broker-%d\n", p, start, end, meta.Partitions[p].Leader)
	}
}
