// Command octopus-server runs a single-region Octopus deployment: the
// broker cluster, the wire (TCP) endpoint for producers and consumers,
// and the Octopus Web Service (HTTP) for topic/trigger/credential
// management — the cloud half of Figure 2 in one process.
//
//	octopus-server -brokers 4 -wire :9092 -http :8080
//
// With -cluster, every broker gets its own wire listener (ports
// ascending from -wire's port: broker 0 on the base port, broker 1 on
// base+1, ...), scoped to the partitions it leads, and clients that
// negotiate FeatClusterMeta discover the whole cluster from any one of
// them and dial partition leaders directly:
//
//	octopus-server -brokers 4 -cluster -wire 127.0.0.1:9092
//
// With -replication (requires -cluster), followers replicate from
// partition leaders over wire-v2 OpReplicaFetch, ISR membership and
// high watermarks are tracked per partition, and acks=all gates on
// real replication; add -data to back every broker's logs with
// durable segment files that replay after a crash:
//
//	octopus-server -brokers 3 -cluster -replication -data /var/lib/octopus
//
// With -metrics-addr, the process serves Prometheus text exposition:
// the fabric-wide registry plus one per-listener registry (labelled
// broker="N" in cluster mode) from a single /metrics endpoint. With
// -pprof-addr, the standard net/http/pprof profiles are served on
// their own listener, kept off the public web-service address:
//
//	octopus-server -brokers 3 -cluster -metrics-addr 127.0.0.1:9100 -pprof-addr 127.0.0.1:6060
//
// For a first run, -bootstrap-user creates an identity and prints a
// token and fabric key so the CLI can connect immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"time"

	"repro/internal/clusternet"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trigger"
	"repro/internal/wire"
)

func main() {
	brokers := flag.Int("brokers", 2, "number of broker nodes")
	vcpus := flag.Int("vcpus", 2, "vCPUs per broker (capacity model)")
	wireAddr := flag.String("wire", "127.0.0.1:9092", "event fabric TCP listen address")
	clusterMode := flag.Bool("cluster", false, "one wire listener per broker (ports ascending from -wire's), leader-direct routing")
	replication := flag.Bool("replication", false, "inter-broker replication over OpReplicaFetch with ISR/high-watermark tracking (requires -cluster)")
	dataDir := flag.String("data", "", "durable segment directory; each broker persists its logs under <data>/broker-<id> (empty: in-memory)")
	httpAddr := flag.String("http", "127.0.0.1:8080", "web service HTTP listen address")
	bootstrapUser := flag.String("bootstrap-user", "", "create this identity at startup and print credentials")
	anonymous := flag.Bool("anonymous", false, "allow unauthenticated wire connections")
	retentionSweep := flag.Duration("retention-sweep", time.Minute, "how often to enforce topic retention")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text exposition on this address at /metrics (empty: disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.Parse()

	if *replication && !*clusterMode {
		log.Fatal("-replication requires -cluster (followers replicate over per-broker wire listeners)")
	}
	oct, err := core.Launch(core.Config{Brokers: *brokers, VCPUs: *vcpus, DataDir: *dataDir})
	if err != nil {
		log.Fatalf("launch: %v", err)
	}
	defer oct.Shutdown()
	if *dataDir != "" {
		log.Printf("durable segments under %s (replayed on restart)", *dataDir)
	}

	// Built-in actions users can attach triggers to via the web service.
	oct.Triggers.RegisterAction("log", func(inv *trigger.Invocation) error {
		log.Printf("trigger %s: %d events (partition %d)", inv.TriggerID, len(inv.Events), inv.Partition)
		return nil
	})
	oct.Triggers.RegisterAction("chain", func(inv *trigger.Invocation) error {
		// Re-publish matched events to "<topic>-derived", the common
		// "events generating more events" pattern of §II.
		derived := inv.Events[0].Topic + "-derived"
		_, err := oct.Fabric.Produce("", derived, -1, inv.Events, 1)
		return err
	})

	if *bootstrapUser != "" {
		user, err := oct.Register(*bootstrapUser, "cli")
		if err != nil {
			log.Fatalf("bootstrap: %v", err)
		}
		key, err := user.CreateKey()
		if err != nil {
			log.Fatalf("bootstrap key: %v", err)
		}
		fmt.Printf("bootstrap identity: %s\n", user.Identity.ID)
		fmt.Printf("bearer token:       %s\n", user.Token.Value)
		fmt.Printf("access key id:      %s\n", key.AccessKeyID)
		fmt.Printf("secret access key:  %s\n", key.Secret)
	}

	mode := ""
	if *anonymous {
		mode = " (anonymous)"
	}
	// promSources is rebuilt per scrape so a stopped/restarted broker's
	// listener joins and leaves the exposition with its lifecycle.
	var promSources func() []metrics.PromSource
	if *clusterMode {
		addrs, err := clusterAddrs(*wireAddr, *brokers)
		if err != nil {
			log.Fatalf("wire listen: %v", err)
		}
		cnet, err := clusternet.Serve(oct.Fabric, clusternet.Options{
			AllowAnonymous: *anonymous, Addrs: addrs, Replication: *replication,
		})
		if err != nil {
			log.Fatalf("wire listen: %v", err)
		}
		defer cnet.Close()
		for _, id := range oct.Fabric.NodeIDs() {
			log.Printf("broker %d wire endpoint%s on %s (leader-scoped, protocol v1-v%d)", id, mode, cnet.Addr(id), wire.MaxProtocol)
		}
		if *replication {
			log.Printf("replication: followers pull over OpReplicaFetch, acks=all gated on ISR high watermarks")
		}
		promSources = func() []metrics.PromSource {
			srcs := []metrics.PromSource{{Reg: oct.Fabric.Metrics}}
			for _, id := range oct.Fabric.NodeIDs() {
				if srv := cnet.Server(id); srv != nil {
					srcs = append(srcs, metrics.PromSource{
						Labels: fmt.Sprintf(`broker="%d"`, id), Reg: srv.Metrics(),
					})
				}
			}
			return srcs
		}
	} else {
		listen := oct.ListenWire
		if *anonymous {
			listen = oct.ListenWireAnonymous
		}
		addr, err := listen(*wireAddr)
		if err != nil {
			log.Fatalf("wire listen: %v", err)
		}
		log.Printf("wire endpoint%s on %s (protocol v1-v%d, v2 + streaming fetch negotiated per connection)", mode, addr, wire.MaxProtocol)
		promSources = func() []metrics.PromSource {
			srcs := []metrics.PromSource{{Reg: oct.Fabric.Metrics}}
			if srv := oct.WireServer(); srv != nil {
				srcs = append(srcs, metrics.PromSource{Reg: srv.Metrics()})
			}
			return srcs
		}
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(promSources))
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Fatalf("metrics: %v", err)
			}
		}()
	}
	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux, served only here — never on the web-service or
		// metrics listeners.
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Fatalf("pprof: %v", err)
			}
		}()
	}

	go func() {
		log.Printf("web service on http://%s", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, oct.Web); err != nil {
			log.Fatalf("http: %v", err)
		}
	}()

	// Retention enforcement loop (§IV-F: 7-day default retention).
	go func() {
		for {
			time.Sleep(*retentionSweep)
			if n := oct.Fabric.EnforceRetention(); n > 0 {
				log.Printf("retention: deleted %d records", n)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("shutting down")
}

// clusterAddrs derives each broker's listen address from the base wire
// address: broker i binds the base port + i.
func clusterAddrs(base string, brokers int) (map[int]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("-wire %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-wire %q: %w", base, err)
	}
	addrs := make(map[int]string, brokers)
	for i := 0; i < brokers; i++ {
		p := port
		if port != 0 {
			p = port + i
		}
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(p))
	}
	return addrs, nil
}
