package main

import (
	"fmt"
	"os"

	"repro/internal/testbed"
)

// runConnBench compares the two v2 consume transports at connection
// scale on this host — the operator-facing twin of the
// BenchmarkManyConnections CI gate, running the identical
// testbed.ConnScaleFixture: many connections each subscribed to many
// partitions, per-partition streams (one server pump goroutine per
// partition per connection) against multiplexed fetch sessions (one
// pump and one shared credit window per connection).
func runConnBench(conns int) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if conns < 1 {
		conns = 16
	}
	const parts, perPart, eventSize = 64, 200, 100
	fx, err := testbed.NewConnScaleFixture(conns, parts, perPart, eventSize)
	if err != nil {
		fail(err)
	}
	defer fx.Close()
	stream, err := fx.Run(false)
	if err != nil {
		fail(err)
	}
	sess, err := fx.Run(true)
	if err != nil {
		fail(err)
	}

	t := &testbed.Table{
		Title: fmt.Sprintf("Consume transports at connection scale (%d connections x %d partitions, %d-byte events)",
			conns, parts, eventSize),
		Columns: []string{"Transport", "Goroutines/conn", "Serving/conn", "Allocs/event", "Drain (ev/s)"},
	}
	t.Add("per-partition streams", fmt.Sprintf("%.1f", stream.GoroutinesPerConn),
		fmt.Sprintf("%.1f", stream.ServingPerConn), fmt.Sprintf("%.2f", stream.AllocsPerEvent), int(stream.EventsPerSec))
	t.Add("multiplexed session", fmt.Sprintf("%.1f", sess.GoroutinesPerConn),
		fmt.Sprintf("%.1f", sess.ServingPerConn), fmt.Sprintf("%.2f", sess.AllocsPerEvent), int(sess.EventsPerSec))
	fmt.Println(t)
	fmt.Printf("goroutine footprint reduction: %.1fx per connection\n",
		stream.GoroutinesPerConn/sess.GoroutinesPerConn)
}
