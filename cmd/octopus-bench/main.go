// Command octopus-bench regenerates the paper's evaluation artifacts:
// every table and figure of §V/§VI-E, printed as aligned text tables.
//
//	octopus-bench -all            # everything
//	octopus-bench -table 3        # Table III
//	octopus-bench -figure 4       # trigger autoscaling run
//	octopus-bench -table cost     # §VII-C cost analysis
//	octopus-bench -real           # reduced-scale run on the real fabric
//	octopus-bench -stream         # consume-transport comparison (PR 2-4)
//	octopus-bench -cluster        # leader-direct vs proxied routing (PR 5)
//	octopus-bench -connections    # streams vs multiplexed sessions at connection scale (PR 6)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/broker"
	"repro/internal/model"
	"repro/internal/testbed"
)

func main() {
	table := flag.String("table", "", "table to regenerate: 1, 2, 3, cost")
	figure := flag.String("figure", "", "figure to regenerate: 3, 4, 5, 7, 8, triggers")
	all := flag.Bool("all", false, "regenerate everything")
	real := flag.Bool("real", false, "also run the reduced-scale real-fabric shape check")
	stream := flag.Bool("stream", false, "compare request/response, pipelined and streaming consume over an emulated remote link")
	clusterBench := flag.Bool("cluster", false, "compare leader-direct routing vs proxying through one listener over emulated remote links")
	clusterBrokers := flag.Int("cluster-brokers", 3, "broker count for -cluster")
	connBench := flag.Bool("connections", false, "compare per-partition streams vs multiplexed fetch sessions at connection scale")
	connCount := flag.Int("conn-count", 16, "connection count for -connections")
	csvDir := flag.String("csv", "", "export every artifact as CSV into this directory")
	flag.Parse()

	if !*all && *table == "" && *figure == "" && !*real && !*stream && !*clusterBench && !*connBench && *csvDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *csvDir != "" {
		files, err := testbed.ExportCSV(*csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, f := range files {
			fmt.Println("wrote", *csvDir+"/"+f)
		}
	}
	if *all || *table == "1" {
		fmt.Println(testbed.Table1())
	}
	if *all || *table == "2" {
		fmt.Println(testbed.Table2())
	}
	if *all || *table == "3" {
		fmt.Println(testbed.Table3())
	}
	if *all || *figure == "3" {
		for _, t := range testbed.Figure3() {
			fmt.Println(t)
		}
	}
	if *all || *figure == "4" {
		fmt.Println(testbed.Figure4())
	}
	if *all || *figure == "triggers" || *figure == "4" {
		fmt.Println(testbed.TriggerThroughputTable())
	}
	if *all || *figure == "5" {
		fmt.Println(testbed.Figure5())
	}
	if *all || *figure == "7" {
		fmt.Println(testbed.Figure7())
	}
	if *all || *figure == "8" {
		for _, t := range testbed.Figure8() {
			fmt.Println(t)
		}
	}
	if *all || *table == "cost" {
		fmt.Println(testbed.CostTable())
	}
	if *real {
		runReal()
	}
	if *stream {
		runStreamBench()
	}
	if *clusterBench {
		runClusterBench(*clusterBrokers)
	}
	if *connBench {
		runConnBench(*connCount)
	}
}

// runReal measures the real in-process fabric at reduced scale and
// reports the same shape comparisons as Table III's acks column.
func runReal() {
	fmt.Println("Real-fabric shape check (this host, reduced scale):")
	t := &testbed.Table{
		Title:   "Acks sweep on the real fabric (1 KB events, 4 producers)",
		Columns: []string{"Acks", "Produce Thru (ev/s)", "Consume Thru (ev/s)", "Med Lat (ms)", "P99 Lat (ms)"},
	}
	for _, acks := range []broker.Acks{broker.AcksNone, broker.AcksLeader, broker.AcksAll} {
		op, err := testbed.NewOperator(model.Baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := op.Run(testbed.RunSpec{
			Topic: "real", Partitions: 2, ReplicationFactor: 2, Acks: acks,
			EventSize: 1024, Producers: 4, Consumers: 1, EventsPerProducer: 5000,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Add(acks.String(), res.ProduceThru, res.ConsumeThru,
			fmt.Sprintf("%.3f", res.ProduceMedMs), fmt.Sprintf("%.3f", res.ProduceP99Ms))
	}
	fmt.Println(t)
}
