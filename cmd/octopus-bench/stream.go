package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/event"
	"repro/internal/testbed"
	"repro/internal/wire"
)

// runStreamBench compares the consume transports introduced across
// PR 2–4 on this host, over an emulated 2 ms remote link: serial-ish
// request/response (no prefetch), the pipelined prefetching fetcher,
// and credit-based streaming fetch. It is the operator-facing twin of
// the BenchmarkStreamingFetch CI gate.
func runStreamBench() {
	const total, eventSize, pollMax = 24000, 200, 500
	f := broker.NewFabric(nil)
	if err := f.AddBrokers(2, 2, 8); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := f.CreateTopic("bench", "", cluster.TopicConfig{Partitions: 1}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	evs := make([]event.Event, 400)
	for i := range evs {
		evs[i] = event.Event{Value: make([]byte, eventSize)}
	}
	for n := 0; n < total; n += len(evs) {
		if _, err := f.Produce("", "bench", 0, evs, broker.AcksLeader); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	srv := wire.NewServer(f)
	srv.AllowAnonymous = true
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	remote, stopProxy, err := testbed.DelayProxy(addr, time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProxy()

	consume := func(disableStreaming, prefetch bool) float64 {
		c, err := wire.DialOptions(remote, wire.Options{Anonymous: true, PoolSize: 1, DisableStreaming: disableStreaming})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer c.Close()
		cons := client.NewConsumer(c, client.ConsumerConfig{
			Start: client.StartEarliest, Prefetch: prefetch,
			MaxPollEvents: pollMax, PollWait: 50 * time.Millisecond,
		})
		defer cons.Close()
		if err := cons.Assign("bench", 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		for got := 0; got < total; {
			polled, err := cons.Poll(pollMax)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			got += len(polled)
		}
		return float64(total) / time.Since(start).Seconds()
	}

	serial := consume(true, false)
	pipelined := consume(true, true)
	streamed := consume(false, true)
	t := &testbed.Table{
		Title:   fmt.Sprintf("Consume transports over an emulated 2 ms link (%d events of %d B)", total, eventSize),
		Columns: []string{"Transport", "Thru (ev/s)", "Speedup vs serial"},
	}
	t.Add("request/response", int(serial), "1.0x")
	t.Add("pipelined + prefetch (PR 2)", int(pipelined), fmt.Sprintf("%.1fx", pipelined/serial))
	t.Add("streaming fetch (PR 4)", int(streamed), fmt.Sprintf("%.1fx", streamed/serial))
	fmt.Println(t)
}
