package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/testbed"
)

// runClusterBench compares leader-direct routing against proxying
// through one listener on this host, over emulated 2 ms links — the
// operator-facing twin of the BenchmarkLeaderDirectRouting CI gate,
// running the identical testbed.ClusterRoutingFixture: a clusternet
// fabric with every broker behind its own link versus the same fabric
// behind a single all-partition listener reached through a forwarding
// hop (what routing via one frontend broker costs).
func runClusterBench(brokers int) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if brokers < 2 {
		brokers = 3
	}
	const rounds, batchEvents, eventSize = 60, 16, 1024
	workers := 2 * brokers
	fx, err := testbed.NewClusterRoutingFixture(brokers, workers, rounds, batchEvents, eventSize, time.Millisecond)
	if err != nil {
		fail(err)
	}
	defer fx.Close()
	if _, err := fx.Run(fx.Direct); err != nil { // warm every leader link
		fail(err)
	}
	proxiedThru, err := fx.Run(fx.Proxied)
	if err != nil {
		fail(err)
	}
	directThru, err := fx.Run(fx.Direct)
	if err != nil {
		fail(err)
	}

	t := &testbed.Table{
		Title: fmt.Sprintf("Produce routing over emulated 2 ms links (%d brokers, %d partitions, %d workers, %d KB batches)",
			brokers, fx.Partitions, fx.Workers, batchEvents*eventSize>>10),
		Columns: []string{"Routing", "Thru (ev/s)", "Speedup", "Misroutes"},
	}
	t.Add("proxy through one listener", int(proxiedThru), "1.0x", "-")
	t.Add("leader-direct (OpMetadata)", int(directThru), fmt.Sprintf("%.1fx", directThru/proxiedThru), fmt.Sprint(fx.Cluster.Misroutes()))
	fmt.Println(t)
}
